"""mayac: the compiler pipeline.

``MayaCompiler.compile`` runs the three stages of figure 4:

1. **file reader** — stream-lex and parse the compilation unit,
   declaration at a time (method bodies stay lazy);
2. **class shaper** — create ClassTypes, resolve supertypes, declare
   member signatures (so forward references work), and run
   class-processing hooks;
3. **class compiler** — force method bodies (running Mayans as the
   parser reduces them) and type-check statements.

Compiling extensions and applications with the same compiler instance
reproduces the paper's figure-1 workflow: compiled extensions are
``provide``d under a name and imported by applications with ``use``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro import perf, trace
from repro.obs import lazy as obs_lazy
from repro.ast import nodes as n
from repro.ast import to_source
from repro.diag import CompileFailed, DiagnosticError
from repro.lexer import stream_lex
from repro.typecheck import CheckError, Scope, check_block, resolve_type_name
from repro.types import ClassType, VOID, array_of
from repro.core.context import CompileContext
from repro.core.drivers import parse_compilation_unit
from repro.core.env import CompileEnv, MayaError

#: Deep Mayan expansions and interpreter calls consume many Python
#: frames per level; a roomy recursion limit keeps the *diagnostic*
#: guard rails (fuel, call-depth budgets) tripping first, so users see
#: a located error instead of a Python RecursionError.
_RECURSION_LIMIT = 10_000


class CompiledClass:
    """A source class after shaping and compilation."""

    def __init__(self, decl: n.ClassDecl, class_type: ClassType):
        self.decl = decl
        self.type = class_type


class CompiledProgram:
    """The result of compiling one or more compilation units."""

    def __init__(self, env: CompileEnv):
        self.env = env
        self.units: List[n.CompilationUnit] = []
        self.classes: Dict[str, CompiledClass] = {}

    def source(self, provenance: bool = False) -> str:
        """Unparse everything (fully expanded syntax); ``provenance``
        annotates generated statements with their origin."""
        return "\n\n".join(to_source(unit, provenance=provenance)
                           for unit in self.units)

    def class_named(self, name: str) -> CompiledClass:
        if name in self.classes:
            return self.classes[name]
        for compiled in self.classes.values():
            if compiled.type.simple_name == name:
                return compiled
        raise MayaError(f"no compiled class {name!r}")


class MayaCompiler:
    """The Maya compiler (mayac).

    >>> compiler = MayaCompiler()
    >>> program = compiler.compile("class Hello { }")
    """

    def __init__(self, env: Optional[CompileEnv] = None):
        self.env = env if env is not None else CompileEnv()
        self.program = CompiledProgram(self.env)

    # -- metaprogram management (figure 1: compiled extensions) -----------

    def provide(self, name: str, metaprogram) -> None:
        self.env.provide(name, metaprogram)

    def use(self, *names: str) -> None:
        """Import metaprograms compiler-wide (the ``-use`` option)."""
        for name in names:
            self.env.find_metaprogram(name.split(".")).run(self.env)

    # -- compilation ---------------------------------------------------------

    def compile(self, source: str, filename: str = "<string>") -> CompiledProgram:
        unit_env = self.env.child()
        unit_env.imports = list(self.env.imports)
        return self.compile_unit(source, filename, unit_env)

    def compile_unit(self, source: str, filename: str,
                     unit_env: CompileEnv,
                     unit_sink: Optional[list] = None) -> CompiledProgram:
        """Compile one translation unit in a caller-built environment.

        The module builder uses this to give each module its own child
        env (own grammar copy carrying that module's import-replayed
        syntax extensions, own import list) while every unit still
        accumulates into the shared program/registry.

        ``unit_sink``, when given, receives the parsed unit.  Callers
        used to read ``program.units[-1]``, which identifies the wrong
        unit once the module builder compiles units concurrently into
        the shared program; the sink is caller-local and race-free."""
        if sys.getrecursionlimit() < _RECURSION_LIMIT:
            sys.setrecursionlimit(_RECURSION_LIMIT)
        engine = unit_env.diag
        mark = engine.mark()
        engine.add_source(filename, source)
        ctx = CompileContext(unit_env)

        try:
            with trace.span("compile", filename, filename=filename):
                with perf.phase("lex"), trace.span("phase", "lex"):
                    tokens = stream_lex(source, filename)
                with perf.phase("parse+expand"), \
                        trace.span("phase", "parse+expand"):
                    unit = parse_compilation_unit(ctx, tokens)
                self.program.units.append(unit)
                if unit_sink is not None:
                    unit_sink.append(unit)

                type_decls = [
                    decl for decl in unit.types
                    if isinstance(decl, (n.ClassDecl, n.InterfaceDecl))
                ]
                with perf.phase("shape"), trace.span("phase", "shape"):
                    compiled = self._shape(type_decls, unit_env)
                for hook in unit_env.unit_hooks:
                    hook(self.program, unit, unit_env)
                # Parse/shape errors poison downstream phases wholesale,
                # so report what was collected before compiling bodies.
                self._raise_pending(engine, mark)
                with perf.phase("bodies+check"), \
                        trace.span("phase", "bodies+check"):
                    self._compile_bodies(compiled, unit_env)
        except CompileFailed:
            raise
        except DiagnosticError as error:
            # A phase that doesn't recover internally failed outright:
            # fold it into the stream and report everything together.
            engine.absorb(error)
        self._raise_pending(engine, mark)
        return self.program

    def _raise_pending(self, engine, mark: int) -> None:
        """Report the compile's collected errors, if any.

        A single recorded error re-raises its original exception (the
        precise phase type callers have always caught); two or more
        aggregate into one CompileFailed carrying every diagnostic.
        """
        errors = engine.errors_since(mark)
        if not errors:
            return
        if len(errors) == 1 and errors[0].cause is not None:
            raise errors[0].cause
        raise CompileFailed(engine.diagnostics[mark:], engine)

    def compile_checked_unit(self, unit: n.CompilationUnit, filename: str,
                             unit_env: CompileEnv,
                             source: Optional[str] = None) -> List:
        """Admit an already-parsed unit: shape and check, no parsing.

        The module builder's deep warm path restores a previously
        checked AST from the cache and re-runs only phases 2 and 3 —
        lexing, parsing, and Mayan expansion are skipped outright
        (expansion already happened; the restored tree is the expanded
        tree).  ``source`` registers the unit's expanded text for
        diagnostic rendering.  The unit joins ``program.units`` only
        on success, so a caller can fall back to compiling the
        expanded source without leaving a half-admitted unit behind.

        Returns the unit's :class:`CompiledClass` list.
        """
        if sys.getrecursionlimit() < _RECURSION_LIMIT:
            sys.setrecursionlimit(_RECURSION_LIMIT)
        engine = unit_env.diag
        mark = engine.mark()
        if source is not None:
            engine.add_source(filename, source)
        with trace.span("compile", filename, filename=filename,
                        restored=True):
            # Mirror what parsing would have recorded on the env (see
            # the package/import handling in the unit driver).
            if unit.package is not None:
                unit_env.package = ".".join(unit.package.parts)
            for decl in unit.imports:
                unit_env.imports.append((tuple(decl.parts), decl.on_demand))
            type_decls = [
                decl for decl in unit.types
                if isinstance(decl, (n.ClassDecl, n.InterfaceDecl))
            ]
            with perf.phase("shape"), trace.span("phase", "shape"):
                compiled = self._shape(type_decls, unit_env)
            for hook in unit_env.unit_hooks:
                hook(self.program, unit, unit_env)
            self._raise_pending(engine, mark)
            with perf.phase("bodies+check"), \
                    trace.span("phase", "bodies+check"):
                self._compile_bodies(compiled, unit_env)
        self._raise_pending(engine, mark)
        self.program.units.append(unit)
        return compiled

    def compile_expression(self, source: str):
        """Parse (and expand) a single expression — REPL-style helper."""
        from repro.lalr import Parser

        ctx = CompileContext(self.env.child())
        tokens = stream_lex(source, "<expr>")
        parser = Parser(ctx.env.tables(), ctx)
        value, _ = parser.parse("Expression", tokens)
        return value

    # -- phase 2: the class shaper ---------------------------------------------

    def _shape(self, decls: List, env: CompileEnv) -> List[CompiledClass]:
        registry = env.registry
        compiled: List[CompiledClass] = []

        # Pass 1: names exist (forward references resolve).
        for decl in decls:
            qualified = decl.name.name if not env.package \
                else f"{env.package}.{decl.name.name}"
            class_type = ClassType(
                qualified,
                is_interface=isinstance(decl, n.InterfaceDecl),
                modifiers=tuple(decl.modifiers),
            )
            class_type.decl = decl
            registry.define(class_type)
            compiled.append(CompiledClass(decl, class_type))
            self.program.classes[qualified] = compiled[-1]

        object_type = registry.require("java.lang.Object")

        # Pass 2: supertypes and member signatures.
        for item in compiled:
            decl, class_type = item.decl, item.type
            if isinstance(decl, n.ClassDecl):
                if decl.superclass is not None:
                    class_type.superclass = self._class_of(decl.superclass, env)
                else:
                    class_type.superclass = object_type
                for interface in decl.interfaces:
                    class_type.interfaces.append(self._class_of(interface, env))
            else:
                for interface in decl.superinterfaces:
                    class_type.interfaces.append(self._class_of(interface, env))
            self._declare_members(item, env)
            for hook in env.class_hooks:
                hook(item, env)
        return compiled

    def _class_of(self, type_name: n.TypeName, env: CompileEnv) -> ClassType:
        resolved = env.registry.resolve(type_name.base, env.imports, env.package)
        if resolved is None:
            raise MayaError(f"{type_name.location}: unknown type {type_name}")
        return resolved

    def _resolve(self, type_name: n.TypeName, env: CompileEnv):
        scope = Scope(env=env)
        type_name.scope = scope
        return resolve_type_name(type_name, scope)

    def _declare_members(self, item: CompiledClass, env: CompileEnv) -> None:
        class_type = item.type
        for member in item.decl.members:
            if isinstance(member, n.FieldDecl):
                base = self._resolve(member.type_name, env)
                for declarator in member.declarators:
                    field_type = array_of(base, declarator.dims) \
                        if declarator.dims else base
                    class_type.declare_field(
                        declarator.name.name, field_type, member.modifiers
                    )
            elif isinstance(member, n.MethodDecl):
                return_type = self._resolve(member.return_type, env)
                param_types = [self._formal_type(f, env) for f in member.formals]
                modifiers = list(member.modifiers)
                if class_type.is_interface and "abstract" not in modifiers:
                    modifiers.append("abstract")
                method = class_type.declare_method(
                    member.name.name, param_types, return_type, modifiers,
                    decl=member,
                )
                member.method = method
            elif isinstance(member, n.ConstructorDecl):
                if member.name.name != class_type.simple_name:
                    raise MayaError(
                        f"{member.location}: constructor name "
                        f"{member.name.name} does not match class"
                    )
                param_types = [self._formal_type(f, env) for f in member.formals]
                ctor = class_type.declare_constructor(
                    param_types, member.modifiers, decl=member
                )
                member.method = ctor
            elif isinstance(member, n.UseDecl):
                continue
            else:
                raise MayaError(
                    f"{member.location}: unsupported member "
                    f"{type(member).__name__}"
                )

    def _formal_type(self, formal: n.Formal, env: CompileEnv):
        return self._resolve(formal.type_name, env)

    # -- phase 3: the class compiler -------------------------------------------

    def _compile_bodies(self, compiled: List[CompiledClass], env: CompileEnv) -> None:
        from repro.typecheck import check_statement

        for item in compiled:
            class_type = item.type
            root = Scope(env=env)
            class_scope = root.class_scope(class_type)
            for member in item.decl.members:
                env.diag.check_deadline()
                try:
                    if isinstance(member, n.FieldDecl):
                        # Check field initializers as pseudo-declarations in
                        # the class scope (static ones without ``this``).
                        scope = class_scope.child()
                        if "static" in member.modifiers:
                            scope.this_type = None
                            scope.static_context = True
                        check_statement(
                            n.LocalVarDecl(list(member.modifiers),
                                           member.type_name, member.declarators),
                            scope,
                        )
                    elif isinstance(member, n.MethodDecl) and member.body is not None:
                        method = member.method
                        scope = class_scope.method_scope(
                            class_type, method.is_static, method.return_type
                        )
                        self._bind_formals(member.formals, method.param_types,
                                           scope)
                        member.body = self._force_body(member.body, scope)
                    elif isinstance(member, n.ConstructorDecl):
                        scope = class_scope.method_scope(class_type, False, VOID)
                        self._bind_formals(member.formals,
                                           member.method.param_types, scope)
                        member.body = self._force_body(member.body, scope)
                except DiagnosticError as error:
                    # A failed member body doesn't hide its siblings:
                    # record the diagnostic and move on (until the
                    # --max-errors budget runs out).
                    fresh = not getattr(error, "_diag_absorbed", False)
                    if not env.diag.try_absorb(error):
                        raise
                    if fresh:
                        member_name = getattr(
                            getattr(member, "name", None), "name", None
                        )
                        where = class_type.simple_name + (
                            f".{member_name}" if member_name else ""
                        )
                        error.diagnostic.with_note(f"while compiling {where}")

    def _bind_formals(self, formals, param_types, scope: Scope) -> None:
        for formal, param_type in zip(formals, param_types):
            formal.scope = scope
            scope.define(formal.name.name, param_type, "param", formal)

    def _force_body(self, body, scope: Scope):
        if isinstance(body, n.LazyNode):
            obs_lazy.thunk_forcing(body)
            body = body.force(scope)
        if isinstance(body, n.BlockStmts):
            check_block(body, scope)
        return body
