"""Built-in runtime classes (the slice of the JDK the paper's examples use).

Signatures only: implementations are registered by repro.interp.  The
``maya.util.Vector`` class is the paper's section-3 example — it extends
``java.util.Vector`` and exposes its backing array via
``getElementData()``, which is what makes the specialized ``VForEach``
expansion profitable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.types.registry import TypeRegistry
from repro.types.types import PRIMITIVES, ClassType, Type, array_of

# (name, superclass, interfaces, is_interface)
_CLASSES: List[Tuple[str, str, Tuple[str, ...], bool]] = [
    ("java.lang.Object", None, (), False),
    ("java.lang.String", "java.lang.Object", (), False),
    ("java.lang.StringBuffer", "java.lang.Object", (), False),
    ("java.lang.Number", "java.lang.Object", (), False),
    ("java.lang.Integer", "java.lang.Number", (), False),
    ("java.lang.Long", "java.lang.Number", (), False),
    ("java.lang.Double", "java.lang.Number", (), False),
    ("java.lang.Boolean", "java.lang.Object", (), False),
    ("java.lang.Character", "java.lang.Object", (), False),
    ("java.lang.Math", "java.lang.Object", (), False),
    ("java.lang.System", "java.lang.Object", (), False),
    ("java.io.PrintStream", "java.lang.Object", (), False),
    ("java.lang.Throwable", "java.lang.Object", (), False),
    ("java.lang.Exception", "java.lang.Throwable", (), False),
    ("java.lang.RuntimeException", "java.lang.Exception", (), False),
    ("java.lang.NullPointerException", "java.lang.RuntimeException", (), False),
    ("java.lang.ClassCastException", "java.lang.RuntimeException", (), False),
    ("java.lang.ArithmeticException", "java.lang.RuntimeException", (), False),
    ("java.lang.IndexOutOfBoundsException", "java.lang.RuntimeException", (), False),
    ("java.lang.IllegalArgumentException", "java.lang.RuntimeException", (), False),
    ("java.lang.Error", "java.lang.Throwable", (), False),
    ("java.lang.AssertionError", "java.lang.Error", (), False),
    ("java.util.NoSuchElementException", "java.lang.RuntimeException", (), False),
    ("java.util.Enumeration", None, (), True),
    ("java.util.Vector", "java.lang.Object", (), False),
    ("java.util.Hashtable", "java.lang.Object", (), False),
    ("maya.util.Vector", "java.util.Vector", (), False),
]

# class -> list of (kind, name, params, return/type, modifiers)
_MEMBERS: Dict[str, List[Tuple]] = {
    "java.lang.Object": [
        ("ctor", "", (), None, ()),
        ("method", "equals", ("java.lang.Object",), "boolean", ()),
        ("method", "hashCode", (), "int", ()),
        ("method", "toString", (), "java.lang.String", ()),
    ],
    "java.lang.String": [
        ("method", "equals", ("java.lang.Object",), "boolean", ()),
        ("method", "length", (), "int", ()),
        ("method", "charAt", ("int",), "char", ()),
        ("method", "substring", ("int",), "java.lang.String", ()),
        ("method", "substring", ("int", "int"), "java.lang.String", ()),
        ("method", "indexOf", ("java.lang.String",), "int", ()),
        ("method", "concat", ("java.lang.String",), "java.lang.String", ()),
        ("method", "toUpperCase", (), "java.lang.String", ()),
        ("method", "toLowerCase", (), "java.lang.String", ()),
        ("method", "valueOf", ("java.lang.Object",), "java.lang.String", ("static",)),
    ],
    "java.lang.StringBuffer": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
        ("method", "append", ("java.lang.String",), "java.lang.StringBuffer", ()),
        ("method", "append", ("java.lang.Object",), "java.lang.StringBuffer", ()),
        ("method", "append", ("int",), "java.lang.StringBuffer", ()),
        ("method", "append", ("char",), "java.lang.StringBuffer", ()),
        ("method", "append", ("double",), "java.lang.StringBuffer", ()),
        ("method", "append", ("boolean",), "java.lang.StringBuffer", ()),
        ("method", "toString", (), "java.lang.String", ()),
        ("method", "length", (), "int", ()),
    ],
    "java.lang.Integer": [
        ("ctor", "", ("int",), None, ()),
        ("method", "intValue", (), "int", ()),
        ("method", "parseInt", ("java.lang.String",), "int", ("static",)),
        ("method", "toString", ("int",), "java.lang.String", ("static",)),
        ("method", "valueOf", ("int",), "java.lang.Integer", ("static",)),
        ("field", "MAX_VALUE", None, "int", ("static", "final")),
        ("field", "MIN_VALUE", None, "int", ("static", "final")),
    ],
    "java.lang.Long": [
        ("ctor", "", ("long",), None, ()),
        ("method", "longValue", (), "long", ()),
    ],
    "java.lang.Double": [
        ("ctor", "", ("double",), None, ()),
        ("method", "doubleValue", (), "double", ()),
        ("method", "parseDouble", ("java.lang.String",), "double", ("static",)),
    ],
    "java.lang.Boolean": [
        ("ctor", "", ("boolean",), None, ()),
        ("method", "booleanValue", (), "boolean", ()),
    ],
    "java.lang.Character": [
        ("ctor", "", ("char",), None, ()),
        ("method", "charValue", (), "char", ()),
    ],
    "java.lang.Math": [
        ("method", "abs", ("int",), "int", ("static",)),
        ("method", "abs", ("double",), "double", ("static",)),
        ("method", "max", ("int", "int"), "int", ("static",)),
        ("method", "min", ("int", "int"), "int", ("static",)),
        ("method", "sqrt", ("double",), "double", ("static",)),
    ],
    "java.lang.System": [
        ("field", "out", None, "java.io.PrintStream", ("static", "final")),
        ("field", "err", None, "java.io.PrintStream", ("static", "final")),
        ("method", "currentTimeMillis", (), "long", ("static",)),
    ],
    "java.io.PrintStream": [
        ("method", "println", (), "void", ()),
        ("method", "println", ("java.lang.String",), "void", ()),
        ("method", "println", ("java.lang.Object",), "void", ()),
        ("method", "println", ("int",), "void", ()),
        ("method", "println", ("long",), "void", ()),
        ("method", "println", ("double",), "void", ()),
        ("method", "println", ("boolean",), "void", ()),
        ("method", "println", ("char",), "void", ()),
        ("method", "print", ("java.lang.String",), "void", ()),
        ("method", "print", ("java.lang.Object",), "void", ()),
        ("method", "print", ("int",), "void", ()),
        ("method", "print", ("char",), "void", ()),
    ],
    "java.lang.Throwable": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
        ("method", "getMessage", (), "java.lang.String", ()),
    ],
    "java.lang.Exception": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.lang.RuntimeException": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.lang.NullPointerException": [("ctor", "", (), None, ())],
    "java.lang.ClassCastException": [("ctor", "", ("java.lang.String",), None, ())],
    "java.lang.ArithmeticException": [("ctor", "", ("java.lang.String",), None, ())],
    "java.lang.IndexOutOfBoundsException": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.lang.IllegalArgumentException": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.lang.Error": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.lang.AssertionError": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("java.lang.String",), None, ()),
    ],
    "java.util.NoSuchElementException": [("ctor", "", (), None, ())],
    "java.util.Enumeration": [
        ("method", "hasMoreElements", (), "boolean", ("abstract",)),
        ("method", "nextElement", (), "java.lang.Object", ("abstract",)),
    ],
    "java.util.Vector": [
        ("ctor", "", (), None, ()),
        ("ctor", "", ("int",), None, ()),
        ("method", "size", (), "int", ()),
        ("method", "isEmpty", (), "boolean", ()),
        ("method", "elementAt", ("int",), "java.lang.Object", ()),
        ("method", "get", ("int",), "java.lang.Object", ()),
        ("method", "addElement", ("java.lang.Object",), "void", ()),
        ("method", "add", ("java.lang.Object",), "boolean", ()),
        ("method", "contains", ("java.lang.Object",), "boolean", ()),
        ("method", "elements", (), "java.util.Enumeration", ()),
    ],
    "java.util.Hashtable": [
        ("ctor", "", (), None, ()),
        ("method", "put", ("java.lang.Object", "java.lang.Object"), "java.lang.Object", ()),
        ("method", "get", ("java.lang.Object",), "java.lang.Object", ()),
        ("method", "remove", ("java.lang.Object",), "java.lang.Object", ()),
        ("method", "containsKey", ("java.lang.Object",), "boolean", ()),
        ("method", "size", (), "int", ()),
        ("method", "keys", (), "java.util.Enumeration", ()),
    ],
    "maya.util.Vector": [
        ("ctor", "", (), None, ()),
        ("method", "getElementData", (), "java.lang.Object[]", ()),
    ],
}


def _parse_type(registry: TypeRegistry, spec: str) -> Type:
    dims = 0
    while spec.endswith("[]"):
        spec = spec[:-2]
        dims += 1
    if spec in PRIMITIVES:
        base: Type = PRIMITIVES[spec]
    else:
        base = registry.require(spec)
    return array_of(base, dims) if dims else base


def install_builtins(registry: TypeRegistry) -> TypeRegistry:
    """Declare all built-in classes and members into a registry."""
    for name, superclass, interfaces, is_interface in _CLASSES:
        registry.declare(name, superclass, interfaces, is_interface)
    for class_name, members in _MEMBERS.items():
        klass = registry.require(class_name)
        for kind, name, params, type_spec, modifiers in members:
            if kind == "field":
                klass.declare_field(name, _parse_type(registry, type_spec), modifiers)
            elif kind == "method":
                klass.declare_method(
                    name,
                    [_parse_type(registry, p) for p in params],
                    _parse_type(registry, type_spec),
                    modifiers,
                )
            else:  # ctor
                klass.declare_constructor(
                    [_parse_type(registry, p) for p in params], modifiers
                )
    return registry


def standard_registry() -> TypeRegistry:
    """A fresh registry with all built-ins installed."""
    return install_builtins(TypeRegistry())
