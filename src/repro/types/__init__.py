"""The type system: Type objects, subtyping, members, and the registry.

Type objects support the introspection API the paper gives Mayans
(java.lang.Class-like queries) plus the limited intercession that lets
metaprograms add members to a class body (section 3.2).
"""

from repro.types.types import (
    ArrayType,
    ClassType,
    ERROR,
    ErrorType,
    Field,
    Method,
    NullType,
    PrimitiveType,
    Type,
    TypeError_,
    BOOLEAN,
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    NULL,
    SHORT,
    VOID,
    array_of,
    binary_numeric_promotion,
    bump_member_epoch,
    can_assign,
    can_cast,
)
from repro.types.registry import TypeRegistry
from repro.types.builtins import install_builtins

__all__ = [
    "ArrayType",
    "BOOLEAN",
    "BYTE",
    "CHAR",
    "ClassType",
    "DOUBLE",
    "ERROR",
    "ErrorType",
    "FLOAT",
    "Field",
    "INT",
    "LONG",
    "Method",
    "NULL",
    "NullType",
    "PrimitiveType",
    "SHORT",
    "Type",
    "TypeError_",
    "TypeRegistry",
    "VOID",
    "array_of",
    "binary_numeric_promotion",
    "bump_member_epoch",
    "can_assign",
    "can_cast",
    "install_builtins",
]
