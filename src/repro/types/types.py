"""Type objects: primitives, classes, arrays, null, and conversions."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.diag import DiagnosticError


class TypeError_(DiagnosticError):
    """A static type error (named with a trailing underscore to avoid
    shadowing the builtin)."""

    phase = "check"


#: Monotone member-table epoch: bumped whenever any class gains or
#: loses a member (intercession's declare_method / remove_method /
#: declare_field).  Execution-side caches keyed on resolved members —
#: the closure backend's compiled method plans and inline caches —
#: record the epoch they were built under and rebuild on mismatch,
#: the same invalidation discipline the dispatcher's plan cache uses
#: for its import epoch.
MEMBER_EPOCH = 0

#: Callbacks fired after every member-epoch bump.  Epoch *checking*
#: alone is not enough for the pycode backend: its specialized call
#: sites jump directly between generated functions without going back
#: through plan lookup, so intercession must eagerly unpatch them.
_EPOCH_LISTENERS: List[Callable[[int], None]] = []


def on_member_epoch_bump(listener: Callable[[int], None]) -> None:
    """Register a callback invoked (with the new epoch) on every bump."""
    _EPOCH_LISTENERS.append(listener)


def bump_member_epoch() -> int:
    global MEMBER_EPOCH
    MEMBER_EPOCH += 1
    for listener in _EPOCH_LISTENERS:
        listener(MEMBER_EPOCH)
    return MEMBER_EPOCH


class Type:
    """Base class of all types."""

    def is_subtype_of(self, other: "Type") -> bool:
        return self is other

    def is_reference(self) -> bool:
        return False

    def syntax_parts(self) -> Tuple[Tuple[str, ...], int]:
        """The (dotted name parts, dims) spelling of this type."""
        raise NotImplementedError

    def __str__(self) -> str:
        parts, dims = self.syntax_parts()
        return ".".join(parts) + "[]" * dims


class PrimitiveType(Type):
    """A Java primitive type (singletons below)."""

    _NUMERIC_ORDER = ("byte", "short", "char", "int", "long", "float", "double")

    def __init__(self, name: str):
        self.name = name

    def syntax_parts(self):
        return ((self.name,), 0)

    @property
    def is_numeric(self) -> bool:
        return self.name in self._NUMERIC_ORDER

    def widens_to(self, other: "Type") -> bool:
        """Java widening primitive conversion (JLS 5.1.2, simplified)."""
        if self is other:
            return True
        if not isinstance(other, PrimitiveType):
            return False
        if not self.is_numeric or not other.is_numeric:
            return False
        order = self._NUMERIC_ORDER
        # char widens to int and beyond; byte/short do not widen to char.
        if other.name == "char":
            return False
        return order.index(self.name) < order.index(other.name)

    def __repr__(self):
        return f"<primitive {self.name}>"


BOOLEAN = PrimitiveType("boolean")
BYTE = PrimitiveType("byte")
SHORT = PrimitiveType("short")
CHAR = PrimitiveType("char")
INT = PrimitiveType("int")
LONG = PrimitiveType("long")
FLOAT = PrimitiveType("float")
DOUBLE = PrimitiveType("double")
VOID = PrimitiveType("void")

PRIMITIVES: Dict[str, PrimitiveType] = {
    t.name: t for t in (BOOLEAN, BYTE, SHORT, CHAR, INT, LONG, FLOAT, DOUBLE, VOID)
}


class NullType(Type):
    """The type of the null literal."""

    def is_subtype_of(self, other: Type) -> bool:
        return other.is_reference() or isinstance(other, NullType)

    def is_reference(self) -> bool:
        return True

    def syntax_parts(self):
        return (("null",), 0)


NULL = NullType()


class ErrorType(Type):
    """The poison type of an expression that already failed to check.

    It silently unifies with everything (assignable to and from any
    type, castable, promotable), so one bad statement no longer hides
    every later error behind cascade failures.  Never escapes a
    successful compile: the checker only produces it on a path that has
    already recorded an error diagnostic.
    """

    def is_subtype_of(self, other: Type) -> bool:
        return True

    def is_reference(self) -> bool:
        return True

    def syntax_parts(self):
        return (("<error>",), 0)

    def __repr__(self):
        return "<error-type>"


ERROR = ErrorType()


class Field:
    """A field signature."""

    def __init__(self, name: str, type_: Type, modifiers: Sequence[str] = (),
                 declaring_class: "ClassType" = None):
        self.name = name
        self.type = type_
        self.modifiers = tuple(modifiers)
        self.declaring_class = declaring_class

    @property
    def is_static(self) -> bool:
        return "static" in self.modifiers

    def __repr__(self):
        return f"<field {self.name}: {self.type}>"


class Method:
    """A method or constructor signature.

    ``impl`` is a Python callable for built-in runtime classes; source
    methods carry their MethodDecl in ``decl`` instead.
    """

    def __init__(
        self,
        name: str,
        param_types: Sequence[Type],
        return_type: Type,
        modifiers: Sequence[str] = (),
        declaring_class: "ClassType" = None,
        impl: Optional[Callable] = None,
        decl=None,
    ):
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.modifiers = tuple(modifiers)
        self.declaring_class = declaring_class
        self.impl = impl
        self.decl = decl

    @property
    def is_static(self) -> bool:
        return "static" in self.modifiers

    @property
    def is_abstract(self) -> bool:
        return "abstract" in self.modifiers

    def same_signature(self, other: "Method") -> bool:
        return self.name == other.name and self.param_types == other.param_types

    def more_specific_than(self, other: "Method") -> bool:
        """JLS-style static specificity: every param assignable across."""
        return all(
            can_assign(mine, theirs)
            for mine, theirs in zip(self.param_types, other.param_types)
        )

    def __repr__(self):
        params = ", ".join(str(p) for p in self.param_types)
        return f"<method {self.return_type} {self.name}({params})>"


class ClassType(Type):
    """A class or interface type."""

    def __init__(self, name: str, superclass: "ClassType" = None,
                 interfaces: Sequence["ClassType"] = (), is_interface: bool = False,
                 modifiers: Sequence[str] = ()):
        self.name = name  # fully qualified
        self.superclass = superclass
        self.interfaces = list(interfaces)
        self.is_interface = is_interface
        self.modifiers = tuple(modifiers)
        self.fields: Dict[str, Field] = {}
        self.methods: Dict[str, List[Method]] = {}
        self.constructors: List[Method] = []
        self.decl = None  # source ClassDecl when compiled from source
        self.hooks: List[Callable] = []

    # -- identity / naming -------------------------------------------------

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    @property
    def package(self) -> str:
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def get_name(self) -> str:
        return self.name

    def syntax_parts(self):
        return (tuple(self.name.split(".")), 0)

    def __repr__(self):
        return f"<class {self.name}>"

    # -- subtyping ----------------------------------------------------------

    def is_reference(self) -> bool:
        return True

    def is_subtype_of(self, other: Type) -> bool:
        if self is other:
            return True
        if not isinstance(other, ClassType):
            return False
        return other in self.ancestors()

    def ancestors(self) -> List["ClassType"]:
        """All supertypes, self included, most derived first."""
        out: List[ClassType] = []
        seen = set()

        def visit(klass: Optional[ClassType]):
            if klass is None or klass.name in seen:
                return
            seen.add(klass.name)
            out.append(klass)
            visit(klass.superclass)
            for interface in klass.interfaces:
                visit(interface)

        visit(self)
        return out

    # -- member declaration (intercession API) -------------------------------

    def declare_field(self, name: str, type_: Type, modifiers: Sequence[str] = ()) -> Field:
        field = Field(name, type_, modifiers, self)
        self.fields[name] = field
        bump_member_epoch()
        return field

    def declare_method(
        self,
        name: str,
        param_types: Sequence[Type],
        return_type: Type,
        modifiers: Sequence[str] = (),
        impl: Optional[Callable] = None,
        decl=None,
    ) -> Method:
        method = Method(name, param_types, return_type, modifiers, self, impl, decl)
        bucket = self.methods.setdefault(name, [])
        bump_member_epoch()
        for index, existing in enumerate(bucket):
            if existing.same_signature(method):
                bucket[index] = method
                return method
        bucket.append(method)
        return method

    def remove_method(self, method: Method) -> None:
        bucket = self.methods.get(method.name, [])
        if method in bucket:
            bucket.remove(method)
            bump_member_epoch()

    def declare_constructor(
        self,
        param_types: Sequence[Type],
        modifiers: Sequence[str] = (),
        impl: Optional[Callable] = None,
        decl=None,
    ) -> Method:
        ctor = Method("<init>", param_types, VOID, modifiers, self, impl, decl)
        self.constructors.append(ctor)
        return ctor

    # -- member lookup ---------------------------------------------------------

    def find_field(self, name: str) -> Optional[Field]:
        for klass in self.ancestors():
            field = klass.fields.get(name)
            if field is not None:
                return field
        return None

    def all_methods(self, name: str) -> List[Method]:
        """All visible methods with this name, most derived first,
        overridden methods excluded."""
        out: List[Method] = []
        for klass in self.ancestors():
            for method in klass.methods.get(name, ()):
                if not any(method.same_signature(m) for m in out):
                    out.append(method)
        return out

    def find_method(self, name: str, arg_types: Sequence[Type]) -> Method:
        """Overload resolution (simplified JLS 15.12)."""
        candidates = [
            m
            for m in self.all_methods(name)
            if len(m.param_types) == len(arg_types)
            and all(can_assign(a, p) for a, p in zip(arg_types, m.param_types))
        ]
        if not candidates:
            args = ", ".join(str(t) for t in arg_types)
            raise TypeError_(f"no method {self.name}.{name}({args})")
        return _most_specific(candidates, f"{self.name}.{name}")

    def find_constructor(self, arg_types: Sequence[Type]) -> Method:
        candidates = [
            c
            for c in self.constructors
            if len(c.param_types) == len(arg_types)
            and all(can_assign(a, p) for a, p in zip(arg_types, c.param_types))
        ]
        if not candidates:
            if not self.constructors and not arg_types:
                # Implicit no-arg constructor.
                return Method("<init>", (), VOID, (), self)
            args = ", ".join(str(t) for t in arg_types)
            raise TypeError_(f"no constructor {self.name}({args})")
        return _most_specific(candidates, f"{self.name}.<init>")


def _most_specific(candidates: List[Method], what: str) -> Method:
    best = candidates[0]
    for candidate in candidates[1:]:
        if candidate.more_specific_than(best):
            best = candidate
    for candidate in candidates:
        if candidate is not best and not best.more_specific_than(candidate):
            raise TypeError_(f"ambiguous call to {what}")
    return best


class ArrayType(Type):
    """An array type; interned per element type via array_of()."""

    _cache: Dict[Type, "ArrayType"] = {}

    def __init__(self, element: Type):
        self.element = element

    def is_reference(self) -> bool:
        return True

    def is_subtype_of(self, other: Type) -> bool:
        if self is other:
            return True
        if isinstance(other, ClassType):
            return other.name in ("java.lang.Object",)
        if isinstance(other, ArrayType):
            # Java's covariant arrays (for reference element types).
            return (
                self.element.is_reference()
                and other.element.is_reference()
                and self.element.is_subtype_of(other.element)
            )
        return False

    def syntax_parts(self):
        parts, dims = self.element.syntax_parts()
        return (parts, dims + 1)

    def __repr__(self):
        return f"<array {self}>"


def array_of(element: Type, dims: int = 1) -> Type:
    out = element
    for _ in range(dims):
        cached = ArrayType._cache.get(out)
        if cached is None:
            cached = ArrayType(out)
            ArrayType._cache[out] = cached
        out = cached
    return out


def can_assign(src: Type, dst: Type) -> bool:
    """Assignment conversion: identity, widening, or reference subtyping."""
    if src is dst:
        return True
    if isinstance(src, ErrorType) or isinstance(dst, ErrorType):
        return True  # poison unifies silently (recovery mode)
    if isinstance(src, PrimitiveType) and isinstance(dst, PrimitiveType):
        return src.widens_to(dst)
    if src.is_reference() and dst.is_reference():
        return src.is_subtype_of(dst)
    return False


def can_cast(src: Type, dst: Type) -> bool:
    """Casting conversion (simplified: both directions of assignability,
    plus numeric narrowing, plus down-casts among reference types)."""
    if can_assign(src, dst) or can_assign(dst, src):
        return True
    if isinstance(src, PrimitiveType) and isinstance(dst, PrimitiveType):
        return src.is_numeric and dst.is_numeric
    if src.is_reference() and dst.is_reference():
        # Interfaces cast freely; sibling classes do not.
        for side in (src, dst):
            if isinstance(side, ClassType) and side.is_interface:
                return True
        return False
    return False


def binary_numeric_promotion(left: Type, right: Type) -> Type:
    """JLS 5.6.2, simplified to our primitive set."""
    if isinstance(left, ErrorType) or isinstance(right, ErrorType):
        return ERROR
    for name in ("double", "float", "long"):
        prim = PRIMITIVES[name]
        if left is prim or right is prim:
            return prim
    return INT
