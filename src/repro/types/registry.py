"""The type registry: qualified names to ClassType objects.

A registry is the "class pool" a compilation environment resolves names
against.  It understands packages, single-type imports, and on-demand
imports; ``java.lang`` is always imported on demand, as in Java.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.types.types import (
    ArrayType,
    ClassType,
    PRIMITIVES,
    Type,
    TypeError_,
    array_of,
)


_registry_uids = iter(range(1, 1 << 62))


class TypeRegistry:
    """Maps qualified class names to types and resolves source names.

    ``uid`` is process-unique (unlike ``id()``, never reused), so
    caches keyed by registry stay sound across garbage collection.
    """

    def __init__(self):
        self.classes: Dict[str, ClassType] = {}
        self.uid = next(_registry_uids)
        # Bumped on every definition: caches of type-dependent decisions
        # (dispatch specificity orders) key on (uid, version) so a class
        # declared mid-compile can change subtype-based outcomes.
        self.version = 0

    def copy(self) -> "TypeRegistry":
        dup = TypeRegistry()
        dup.classes = dict(self.classes)
        dup.version = self.version
        return dup

    # -- registration -------------------------------------------------------

    def define(self, class_type: ClassType) -> ClassType:
        self.classes[class_type.name] = class_type
        self.version += 1
        return class_type

    def declare(self, name: str, superclass: Optional[str] = None,
                interfaces: Sequence[str] = (), is_interface: bool = False,
                modifiers: Sequence[str] = ()) -> ClassType:
        super_type = self.classes[superclass] if superclass else None
        iface_types = [self.classes[i] for i in interfaces]
        return self.define(
            ClassType(name, super_type, iface_types, is_interface, modifiers)
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, qualified_name: str) -> Optional[ClassType]:
        return self.classes.get(qualified_name)

    def require(self, qualified_name: str) -> ClassType:
        found = self.classes.get(qualified_name)
        if found is None:
            raise TypeError_(f"unknown class {qualified_name}")
        return found

    def package_members(self, package: str) -> List[ClassType]:
        prefix = package + "."
        return [
            klass
            for name, klass in self.classes.items()
            if name.startswith(prefix) and "." not in name[len(prefix):]
        ]

    def resolve(
        self,
        parts: Sequence[str],
        imports: Sequence[Tuple[Tuple[str, ...], bool]] = (),
        current_package: str = "",
    ) -> Optional[ClassType]:
        """Resolve a dotted name against imports and packages.

        ``imports`` is a list of (parts, on_demand) pairs.  Resolution
        order (JLS-ish): exact qualified name, current package, single
        imports, on-demand imports, java.lang, default package.
        """
        name = ".".join(parts)
        if name in self.classes:
            return self.classes[name]
        if len(parts) == 1:
            simple = parts[0]
            if current_package:
                found = self.classes.get(f"{current_package}.{simple}")
                if found is not None:
                    return found
            for import_parts, on_demand in imports:
                if not on_demand and import_parts[-1] == simple:
                    return self.classes.get(".".join(import_parts))
            hits = []
            for import_parts, on_demand in imports:
                if on_demand:
                    found = self.classes.get(".".join(import_parts) + "." + simple)
                    if found is not None:
                        hits.append(found)
            if len(hits) > 1:
                raise TypeError_(f"ambiguous on-demand import for {simple}")
            if hits:
                return hits[0]
            found = self.classes.get(f"java.lang.{simple}")
            if found is not None:
                return found
            return self.classes.get(simple)
        return None

    def resolve_type(
        self,
        parts: Sequence[str],
        dims: int = 0,
        imports: Sequence[Tuple[Tuple[str, ...], bool]] = (),
        current_package: str = "",
    ) -> Type:
        """Resolve a syntactic type (name or primitive, plus dims)."""
        if len(parts) == 1 and parts[0] in PRIMITIVES:
            base: Type = PRIMITIVES[parts[0]]
        else:
            resolved = self.resolve(parts, imports, current_package)
            if resolved is None:
                raise TypeError_(f"unknown type {'.'.join(parts)}")
            base = resolved
        return array_of(base, dims) if dims else base
