"""Writing your own language extension.

Three extensions built from scratch with the public API, in increasing
order of ambition:

1. ``unless (cond) stmt`` — a new statement form (grammar extension +
   Mayan + hygienic template);
2. ``repeat (n) { ... }`` — a counted loop with a hygienic counter;
3. a *retargeting* Mayan that rewrites ``Math.min`` calls to an inline
   conditional — overriding base semantics with no new syntax at all.

    python examples/custom_macro.py
"""

from repro import MayaCompiler, Mayan, Template
from repro.interp import Interpreter


class Unless(Mayan):
    """unless (cond) statement  ==>  if (!(cond)) statement"""

    result = "Statement"
    pattern = "unless (Expression cond) Statement body"
    TEMPLATE = Template("Statement", "if (!($c)) $b",
                        c="Expression", b="Statement")

    def run(self, env):
        env.add_production("Statement", "unless (Expression) Statement")
        super().run(env)

    def expand(self, ctx, cond, body):
        return ctx.instantiate(self.TEMPLATE, c=cond, b=body)


class Repeat(Mayan):
    """repeat (n) { body }  ==>  a for loop with a hygienic counter."""

    result = "Statement"
    pattern = "repeat (Expression count) lazy(BraceTree, BlockStmts) body"
    TEMPLATE = Template(
        "Statement",
        "for (int i = 0; i < $n; i++) { $b }",
        n="Expression", b="BlockStmts",
    )

    def run(self, env):
        env.add_production(
            "Statement", "repeat (Expression) lazy(BraceTree, BlockStmts)")
        super().run(env)

    def expand(self, ctx, count, body):
        # 'i' is renamed to i$N per expansion: user code can use its own i.
        return ctx.instantiate(self.TEMPLATE, n=count, b=body)


class InlineMin(Mayan):
    """Rewrites Math.min(a, b) into a conditional — overriding the
    translation of *existing* syntax via lexical tie-breaking."""

    result = "MethodInvocation"
    pattern = "QName out \\. min (Expression a , Expression b)"
    TEMPLATE = Template("Expression", "(($x) < ($y) ? ($x) : ($y))",
                        x="Expression", y="Expression")

    def expand(self, ctx, out, a, b):
        if out.parts != ("Math",):
            return ctx.next_rewrite()
        return ctx.instantiate(self.TEMPLATE, x=a, y=b)


SOURCE = """
class Demo {
    static void main() {
        use ext.Unless;
        use ext.Repeat;
        use ext.InlineMin;

        unless (1 > 2) System.out.println("unless works");

        int i = 100;  // does not clash with repeat's counter
        repeat (3) {
            System.out.println("repeat " + i);
            i++;
        }

        System.out.println("min = " + Math.min(4 * 4, 3 + 3));
    }
}
"""


def main():
    compiler = MayaCompiler()
    compiler.provide("ext.Unless", Unless())
    compiler.provide("ext.Repeat", Repeat())
    compiler.provide("ext.InlineMin", InlineMin())

    program = compiler.compile(SOURCE, "custom.maya")
    print("Expanded source:")
    print(program.source())
    print()
    interp = Interpreter(program)
    interp.run_static("Demo")
    print("Output:")
    for line in interp.output:
        print(" ", line)


if __name__ == "__main__":
    main()
