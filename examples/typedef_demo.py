"""Local Mayans and lexically scoped imports (paper figure 3).

The Typedef macro defines a *local* Mayan (Subst) that closes over the
alias/replacement pair and is exposed to the typedef body through a
UseStmt — metaprograms structured as classes plus a few small Mayans.

    python examples/typedef_demo.py
"""

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library

SOURCE = """
class Demo {
    static void main() {
        use maya.util.Typedef;

        typedef (Registry = java.util.Hashtable) {
            typedef (Names = java.util.Vector) {
                Registry people = new Registry();
                people.put("ada", "lovelace");
                people.put("alan", "turing");

                Names first = new Names();
                first.addElement("ada");
                first.addElement("alan");

                for (int i = 0; i < first.size(); i++) {
                    String name = (String) first.elementAt(i);
                    System.out.println(name + " " + people.get(name));
                }
            }
        }
    }
}
"""


def main():
    compiler = MayaCompiler()
    install_macro_library(compiler)
    program = compiler.compile(SOURCE, "typedef.maya")

    print("Expanded source — every alias resolved by the local Subst Mayan:")
    print(program.source())
    print()
    interp = Interpreter(program)
    interp.run_static("Demo")
    print("Output:")
    for line in interp.output:
        print(" ", line)


if __name__ == "__main__":
    main()
