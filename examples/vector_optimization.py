"""Multiple dispatch as an optimization (paper section 3).

The same ``v.elements().foreach(...)`` source compiles to two different
loops depending on the *static type* of ``v``: the general Enumeration
loop, or — when ``v`` is a maya.util.Vector whose ``elements()`` call
is written syntactically — a direct walk of the vector's backing array.
The interpreter's operation counters show what the specialized
expansion saves.

    python examples/vector_optimization.py
"""

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library

TEMPLATE = """
import java.util.*;
class Demo {{
    static void main() {{
        use maya.util.ForEach;
        {vector} v = new {vector}();
        for (int i = 0; i < 1000; i++) v.addElement("payload");
        int chars = 0;
        v.elements().foreach(String s) {{
            chars = chars + s.length();
        }}
        System.out.println(chars);
    }}
}}
"""


def measure(vector_class):
    compiler = MayaCompiler()
    install_macro_library(compiler)
    program = compiler.compile(TEMPLATE.format(vector=vector_class))
    interp = Interpreter(program)
    interp.run_static("Demo")
    return program, interp


def main():
    for vector_class in ("java.util.Vector", "maya.util.Vector"):
        program, interp = measure(vector_class)
        counters = interp.counters
        loop = [line for line in program.source().splitlines()
                if "for (" in line][1]
        print(f"--- {vector_class} ---")
        print(f"  selected expansion : {loop.strip()}")
        print(f"  program output     : {interp.output[0]}")
        print(f"  allocations        : {counters.allocations}")
        print(f"  method calls       : {counters.method_calls}")
        print()

    print("The maya.util.Vector version avoided the Enumeration object")
    print("and its two method calls per element — selected purely by")
    print("Maya's multiple dispatch on syntax structure + static types.")


if __name__ == "__main__":
    main()
