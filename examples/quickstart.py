"""Quickstart: the paper's section-3 foreach example, end to end.

Compiles the Hashtable-walking program from the paper's introduction,
prints the expanded (plain Java) source the Mayans produced, and runs
it on the interpreter.

    python examples/quickstart.py
"""

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library

SOURCE = """
import java.util.*;

class Demo {
    static void main() {
        use maya.util.ForEach;

        Hashtable h = new Hashtable();
        h.put("one", "1");
        h.put("two", "2");
        h.put("three", "3");

        // The paper's motivating macro call: not a method, a Mayan.
        h.keys().foreach(String st) {
            System.out.println(st + " = " + h.get(st));
        }
    }
}
"""


def main():
    compiler = MayaCompiler()
    install_macro_library(compiler)

    program = compiler.compile(SOURCE, "quickstart.maya")

    print("=" * 60)
    print("Expanded source (what the Mayans generated):")
    print("=" * 60)
    print(program.source())

    print()
    print("=" * 60)
    print("Program output:")
    print("=" * 60)
    interp = Interpreter(program)
    interp.run_static("Demo")
    for line in interp.output:
        print(line)


if __name__ == "__main__":
    main()
