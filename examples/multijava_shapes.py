"""MultiJava (paper section 5): open classes and multimethods.

The classic visitor-pattern replacement: a shape-intersection routine
dispatched on the runtime classes of *both* arguments, plus externally
defined methods added to the Shape hierarchy without recompiling it.

    python examples/multijava_shapes.py
"""

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.multijava import install_multijava

SOURCE = """
use multijava.MultiJava;

class Shape { }
class Circle extends Shape {
    int r;
    Circle(int r) { this.r = r; }
}
class Rect extends Shape {
    int w; int h;
    Rect(int w, int h) { this.w = w; this.h = h; }
}

// Open classes: area() added to an existing hierarchy, externally.
int Shape.area() { return 0; }
int Circle.area() { return 3 * this.r * this.r; }
int Rect.area() { return this.w * this.h; }

// Multimethods: dispatch on the runtime classes of both arguments.
class Intersector {
    String how(Shape a, Shape b) { return "bounding boxes"; }
    String how(Shape@Circle a, Shape@Circle b) { return "center distance"; }
    String how(Shape@Circle a, Shape@Rect b) { return "closest-corner test"; }
    String how(Shape@Rect a, Shape@Circle b) {
        // super selects the next applicable method, not the superclass.
        return "swap, then " + super.how(a, b);
    }
}

class Demo {
    static void main() {
        Shape c = new Circle(2);
        Shape r = new Rect(3, 5);
        System.out.println("areas: " + c.area() + ", " + r.area());

        Intersector i = new Intersector();
        System.out.println("c/c: " + i.how(c, c));
        System.out.println("c/r: " + i.how(c, r));
        System.out.println("r/c: " + i.how(r, c));
        System.out.println("r/r: " + i.how(r, r));
    }
}
"""


def main():
    compiler = MayaCompiler()
    install_multijava(compiler)
    program = compiler.compile(SOURCE, "shapes.mj")

    print("=" * 60)
    print("Generated dispatchers (figure-8 instanceof chains):")
    print("=" * 60)
    for line in program.source().splitlines():
        if "instanceof" in line or "$impl" in line or "$ext" in line:
            print(line)

    print()
    print("=" * 60)
    print("Program output:")
    print("=" * 60)
    interp = Interpreter(program)
    interp.run_static("Demo")
    for line in interp.output:
        print(line)


if __name__ == "__main__":
    main()
