"""The perf-regression gate (benchmarks/compare.py)."""

import importlib.util
import json
import pathlib

import pytest

_COMPARE_PATH = (pathlib.Path(__file__).parent.parent
                 / "benchmarks" / "compare.py")
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare)


BASELINE = {
    "metrics": {
        "parse_ms": {"unit": "ms", "value": 10.0},
        "lookup_us": {"unit": "us", "value": 0.5},
        "overhead_ratio_8_vs_0": {"unit": "x", "value": 2.5},
        "mj_never_forced_pct": {"unit": "%", "value": 40.0},
        "obs_overhead_pct": {"unit": "pct", "value": 1.0},
        "statements": {"unit": "", "value": 60},
    },
    "reports": {},
}


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "base"
    current = tmp_path / "cur"
    baseline.mkdir()
    current.mkdir()
    (baseline / "BENCH_demo.json").write_text(json.dumps(BASELINE))
    (current / "BENCH_demo.json").write_text(json.dumps(BASELINE))
    return baseline, current


def rewrite(current, **values):
    fresh = json.loads(json.dumps(BASELINE))
    for name, value in values.items():
        fresh["metrics"][name]["value"] = value
    (current / "BENCH_demo.json").write_text(json.dumps(fresh))


class TestCompare:
    def test_identical_baselines_pass(self, dirs, capsys):
        baseline, current = dirs
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_2x_timing_regression_fails(self, dirs, capsys):
        baseline, current = dirs
        rewrite(current, parse_ms=20.0)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_small_jitter_within_tolerance(self, dirs):
        baseline, current = dirs
        rewrite(current, parse_ms=11.5, lookup_us=0.6)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 0

    def test_improvement_passes(self, dirs):
        baseline, current = dirs
        rewrite(current, parse_ms=2.0, overhead_ratio_8_vs_0=1.1)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 0

    def test_laziness_drop_fails(self, dirs, capsys):
        # never-forced is higher-is-better: a big drop means the
        # compiler started eagerly doing work it used to skip.
        baseline, current = dirs
        rewrite(current, mj_never_forced_pct=5.0)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 1
        assert "mj_never_forced_pct" in capsys.readouterr().out

    def test_overhead_budget_is_absolute(self, dirs, capsys):
        # The obs-overhead budget is a ceiling on the fresh value, not
        # a trajectory: tripling a 1% baseline is fine (relative rules
        # on near-zero baselines are noise), but crossing 5% fails
        # even with a loosened tolerance scale.
        baseline, current = dirs
        rewrite(current, obs_overhead_pct=3.0)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 0
        rewrite(current, obs_overhead_pct=6.2)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current),
                             "--tolerance-scale", "4"]) == 1
        assert "over the 5 budget" in capsys.readouterr().out

    def test_missing_metric_fails(self, dirs, capsys):
        baseline, current = dirs
        fresh = json.loads(json.dumps(BASELINE))
        del fresh["metrics"]["parse_ms"]
        (current / "BENCH_demo.json").write_text(json.dumps(fresh))
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 1
        assert "missing from fresh run" in capsys.readouterr().out

    def test_untracked_count_is_informational(self, dirs, capsys):
        baseline, current = dirs
        rewrite(current, statements=600)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current)]) == 0
        assert "info" in capsys.readouterr().out

    def test_tolerance_scale_loosens_gate(self, dirs):
        baseline, current = dirs
        rewrite(current, parse_ms=20.0)
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current),
                             "--tolerance-scale", "2"]) == 0

    def test_report_artifact(self, dirs, tmp_path):
        baseline, current = dirs
        rewrite(current, parse_ms=20.0)
        report = tmp_path / "diff.json"
        assert compare.main(["--baseline", str(baseline),
                             "--current", str(current),
                             "--report", str(report)]) == 1
        payload = json.loads(report.read_text())
        assert payload["schema"] == "maya.bench-compare/1"
        assert payload["regressions"] == 1
        failing = [r for r in payload["rows"]
                   if r["status"] == "regression"]
        assert failing[0]["metric"] == "parse_ms"

    def test_missing_baseline_dir_is_usage_error(self, tmp_path, capsys):
        assert compare.main(["--baseline", str(tmp_path / "nope"),
                             "--current", str(tmp_path)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_real_committed_baselines_pass_against_themselves(self, capsys):
        root = str(pathlib.Path(__file__).parent.parent)
        assert compare.main(["--baseline", root, "--current", root]) == 0
