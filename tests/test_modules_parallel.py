"""The parallel module-build machinery, unit by unit.

Covers the DAG scheduler's ordering and failure barrier, the
``--jobs`` resolution rules, exact metric totals under concurrency
(both many builders racing and one builder fanning out), failure
parity between serial and parallel builds (same exception, same
message), the deep (checked-AST) warm path, and the fork worker pool.
"""

import os
import threading

import pytest

from repro.core.env import CompileEnv
from repro.diag import DiagnosticError
from repro.interp import Interpreter
from repro.modules import (MemorySources, ModuleBuilder, load_unit,
                           snapshot_unit, SnapshotError)
from repro.modules.procpool import ChildJobError, ForkPool, fork_available
from repro.modules.schedule import DagScheduler, resolve_jobs
from repro.obs.metrics import REGISTRY


def _counter(name):
    return REGISTRY.get(name).value


def project(width=4, prefix="lib"):
    """``width`` independent leaves plus a root importing them all."""
    sources = {
        f"{prefix}.M{i}": f"class M{i} {{ static int v() "
                          f"{{ return {i + 1}; }} }}"
        for i in range(width)
    }
    imports = "".join(f"import {prefix}.M{i};\n" for i in range(width))
    calls = " + ".join(f"M{i}.v()" for i in range(width))
    sources["app.Main"] = (
        f"{imports}class Main {{ static int run() "
        f"{{ return {calls}; }} }}")
    return sources


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("MAYA_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("MAYA_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("MAYA_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_auto_and_zero_mean_cpu_count(self):
        expect = os.cpu_count() or 1
        assert resolve_jobs("auto") == expect
        assert resolve_jobs(0) == expect

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            resolve_jobs("lots")

    def test_negative_clamps_to_one(self):
        assert resolve_jobs(-4) == 1


class TestDagScheduler:
    def test_deps_always_complete_first(self):
        order = ["a", "b", "c", "d", "e"]
        deps = {"a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"],
                "e": ["d"]}
        started, lock = [], threading.Lock()

        def run(name):
            with lock:
                started.append(name)
            return name.upper()

        scheduler = DagScheduler(order, deps, run)
        scheduler.run_threaded(3)
        position = {name: i for i, name in enumerate(started)}
        for name, wants in deps.items():
            for dep in wants:
                assert position[dep] < position[name]
        assert scheduler.results() == {n: n.upper() for n in order}
        assert scheduler.failed() == []

    def test_single_job_runs_in_topo_order(self):
        order = ["m0", "m1", "m2", "m3"]
        deps = {"m0": [], "m1": [], "m2": ["m0"], "m3": []}
        ran = []
        DagScheduler(order, deps, ran.append).run_threaded(1)
        assert ran == order

    def test_tasks_genuinely_overlap(self):
        # Two independent tasks that each wait for the other to start:
        # only a schedule that actually runs them concurrently passes.
        barrier = threading.Barrier(2, timeout=10)

        def run(name):
            barrier.wait()

        DagScheduler(["x", "y"], {"x": [], "y": []}, run).run_threaded(2)

    def test_failure_halts_and_strands_dependents(self):
        order = ["a", "b", "c", "z"]
        deps = {"a": [], "b": ["a"], "c": ["b"], "z": []}
        boom = RuntimeError("b exploded")

        def run(name):
            if name == "b":
                raise boom
            return name

        scheduler = DagScheduler(order, deps, run)
        scheduler.run_threaded(2)
        failed = scheduler.failed()
        assert [task.name for task in failed] == ["b"]
        assert failed[0].error is boom
        states = {name: task.state for name, task in scheduler.tasks.items()}
        assert states["a"] == scheduler.tasks["a"].DONE
        assert states["c"] == scheduler.tasks["c"].SKIPPED

    def test_external_spawn_may_refuse(self):
        # A spawn that never places helpers (full daemon queue): the
        # owner drain must still finish everything.
        ran = []
        scheduler = DagScheduler(["a", "b"], {"a": [], "b": []},
                                 ran.append)
        scheduler.run_threaded(4, spawn=lambda drain: False)
        assert sorted(ran) == ["a", "b"]


class TestParallelBuilder:
    def test_exact_counter_totals_one_build(self, tmp_path):
        sources = project(width=6)
        compiled0 = _counter("maya_modules_compiled_total")
        clean = ModuleBuilder(MemorySources(sources),
                              cache_dir=str(tmp_path),
                              jobs=4).build(["app.Main"])
        assert _counter("maya_modules_compiled_total") - compiled0 \
            == len(clean.order) == 7

        reused0 = _counter("maya_modules_reused_total")
        deep0 = _counter("maya_modules_deep_restored_total")
        fallback0 = _counter("maya_modules_deep_fallback_total")
        warm = ModuleBuilder(MemorySources(sources),
                             cache_dir=str(tmp_path),
                             jobs=4).build(["app.Main"], need_bodies=True)
        assert warm.reused == warm.order
        assert _counter("maya_modules_reused_total") - reused0 == 7
        # Every warm materialization took the deep path.
        assert _counter("maya_modules_deep_restored_total") - deep0 == 7
        assert _counter("maya_modules_deep_fallback_total") == fallback0

    def test_exact_counter_totals_many_racing_builders(self, tmp_path):
        # PR 6 idiom: hammer the shared counters from many concurrent
        # builds and assert *exact* totals — a lost update or a
        # double-count under the fan-out shows up as an off-by-N.
        builders = 6
        sources = [project(width=3, prefix=f"race{i}")
                   for i in range(builders)]
        compiled0 = _counter("maya_modules_compiled_total")
        errors = []

        def build(i):
            try:
                ModuleBuilder(MemorySources(sources[i]),
                              cache_dir=str(tmp_path / str(i)),
                              env=CompileEnv(),
                              jobs=3).build(["app.Main"])
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=build, args=(i,))
                   for i in range(builders)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert _counter("maya_modules_compiled_total") - compiled0 \
            == builders * 4

    def test_failure_parity_with_serial(self, tmp_path):
        sources = project(width=3)
        sources["app.Main"] = (
            "import lib.M0;\n"
            "class Main { static int run() { return M0.nope(); } }")

        def message(jobs, mode="thread"):
            with pytest.raises(DiagnosticError) as caught:
                ModuleBuilder(MemorySources(sources), env=CompileEnv(),
                              jobs=jobs, mode=mode).build(["app.Main"])
            return str(caught.value)

        serial = message(1)
        assert "nope" in serial
        assert message(4) == serial
        if fork_available():
            assert message(4, mode="fork") == serial

    def test_program_tables_are_canonical_after_parallel_build(self):
        sources = project(width=5)
        serial = ModuleBuilder(MemorySources(sources), env=CompileEnv(),
                               jobs=1).build(["app.Main"],
                                             need_bodies=True)
        parallel = ModuleBuilder(MemorySources(sources), env=CompileEnv(),
                                 jobs=4).build(["app.Main"],
                                               need_bodies=True)
        assert list(parallel.program.classes) \
            == list(serial.program.classes)
        assert parallel.program.source() == serial.program.source()

    def test_parallel_warm_program_runs(self, tmp_path):
        sources = project(width=4)
        ModuleBuilder(MemorySources(sources),
                      cache_dir=str(tmp_path)).build(["app.Main"])
        warm = ModuleBuilder(MemorySources(sources),
                             cache_dir=str(tmp_path),
                             jobs=4).build(["app.Main"],
                                           need_bodies=True)
        value = Interpreter(warm.program).run_static("Main", "run")
        assert value == 1 + 2 + 3 + 4


class TestDeepRestore:
    def test_snapshot_roundtrip_unparses_identically(self):
        from repro.ast import to_source
        from repro.core.compiler import MayaCompiler

        compiler = MayaCompiler()
        program = compiler.compile(
            "class Pair { int a; int b;\n"
            "  Pair(int a, int b) { this.a = a; this.b = b; }\n"
            "  int sum() { int t = this.a + this.b; return t; } }")
        unit = program.units[-1]
        blob = snapshot_unit(unit)
        assert blob is not None
        assert snapshot_unit(unit) == blob  # canonical bytes
        restored = load_unit(blob)
        assert to_source(restored) == to_source(unit)

    def test_corrupt_blob_raises_snapshot_error(self):
        from repro.core.compiler import MayaCompiler

        program = MayaCompiler().compile("class One { }")
        blob = snapshot_unit(program.units[-1])
        with pytest.raises(SnapshotError):
            load_unit(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError):
            load_unit(b"\x80\x04not a snapshot")

    def test_deep_and_shallow_materialization_agree(self, tmp_path):
        sources = project(width=3)
        ModuleBuilder(MemorySources(sources),
                      cache_dir=str(tmp_path)).build(["app.Main"])

        deep0 = _counter("maya_modules_deep_restored_total")
        deep = ModuleBuilder(MemorySources(sources),
                             cache_dir=str(tmp_path)
                             ).build(["app.Main"], need_bodies=True)
        assert _counter("maya_modules_deep_restored_total") - deep0 == 4

        fallback0 = _counter("maya_modules_deep_fallback_total")
        shallow = ModuleBuilder(MemorySources(sources),
                                cache_dir=str(tmp_path),
                                deep_restore=False
                                ).build(["app.Main"], need_bodies=True)
        assert _counter("maya_modules_deep_fallback_total") \
            - fallback0 == 4

        assert deep.expanded() == shallow.expanded()
        assert deep.program.source() == shallow.program.source()
        assert Interpreter(deep.program).run_static("Main", "run") \
            == Interpreter(shallow.program).run_static("Main", "run")

    def test_macro_heavy_module_deep_restores_and_runs(self, tmp_path):
        # Mayan-expanded trees must survive the snapshot: expansion
        # happens at recompile, the deep artifact is the *expanded*
        # checked tree.
        from repro.macros import install_macro_library

        sources = {
            "lib.Loops": """
                use maya.util.ForEach;
                class Loops {
                    static void dump(String[] items) {
                        items.foreach(String s) {
                            System.out.println(s);
                        }
                    }
                }
            """,
            "app.Main": """
                import lib.Loops;
                class Main {
                    static void main() {
                        String[] data = new String[2];
                        data[0] = "alpha"; data[1] = "beta";
                        Loops.dump(data);
                    }
                }
            """,
        }

        def builder():
            built = ModuleBuilder(MemorySources(sources),
                                  cache_dir=str(tmp_path))
            install_macro_library(built.compiler)
            return built

        builder().build(["app.Main"])
        deep0 = _counter("maya_modules_deep_restored_total")
        warm = builder().build(["app.Main"], need_bodies=True)
        assert warm.reused == warm.order
        assert _counter("maya_modules_deep_restored_total") - deep0 == 2
        interp = Interpreter(warm.program)
        interp.run_static("Main")
        assert interp.output == ["alpha", "beta"]


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestForkPool:
    def test_jobs_round_trip(self):
        with ForkPool(2, lambda job: job * 2) as pool:
            assert pool.call(21) == 42
            assert pool.call("ab") == "abab"

    def test_child_errors_ship_without_killing_the_pool(self):
        def run_job(job):
            if job == "bad":
                raise ValueError("job went sideways")
            return "ok"

        with ForkPool(1, run_job) as pool:
            with pytest.raises(ChildJobError) as caught:
                pool.call("bad")
            assert "job went sideways" in str(caught.value)
            # The worker survives a shipped error and serves on.
            assert pool.call("fine") == "ok"

    def test_close_is_idempotent(self):
        pool = ForkPool(2, lambda job: job)
        pool.close()
        pool.close()
