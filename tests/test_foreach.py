"""The foreach macros: experiment E1 (the section-3 expansion) and the
dispatch behavior behind E2 (the optimized VForEach)."""

import pytest

from repro.ast import nodes as n
from repro.interp import Interpreter
from tests.conftest import compile_source, run_main


class TestEForEach:
    def test_paper_expansion_shape(self):
        """Section 3: h.keys().foreach(String st) { ... } becomes a for
        loop over an Enumeration with a fresh enumVar$ variable."""
        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Hashtable h = new Hashtable();
                    h.put("one", "1");
                    h.keys().foreach(String st) {
                        System.err.println(st + " = " + h.get(st));
                    }
                }
            }
        """, macros=True)
        source = program.source()
        assert "for (java.util.Enumeration enumVar$" in source
        assert ".hasMoreElements()" in source
        assert "(java.lang.String)" in source
        assert ".nextElement()" in source
        # The fresh name does not appear in user source.
        assert "foreach" not in source

    def test_runs_correctly(self):
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("a");
                    v.addElement("b");
                    v.elements().foreach(String s) {
                        System.out.println(s.toUpperCase());
                    }
                }
            }
        """, macros=True)
        assert lines == ["A", "B"]

    def test_name_receiver(self):
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("x");
                    Enumeration e = v.elements();
                    e.foreach(String s) { System.out.println(s); }
                }
            }
        """, macros=True)
        assert lines == ["x"]

    def test_loop_variable_typed(self):
        """The loop variable has the declared type; using it at a wrong
        type is a static error in the body."""
        with pytest.raises(Exception):
            compile_source("""
                import java.util.*;
                class Demo {
                    static void main() {
                        use maya.util.ForEach;
                        Vector v = new Vector();
                        v.elements().foreach(String s) {
                            int bad = s;
                        }
                    }
                }
            """, macros=True)

    def test_requires_enumeration_type(self):
        """foreach on a non-collection receiver has no applicable Mayan."""
        with pytest.raises(Exception):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.ForEach;
                        String s = "x";
                        s.length().foreach(String c) { }
                    }
                }
            """, macros=True)

    def test_without_use_foreach_is_error(self):
        with pytest.raises(Exception):
            compile_source("""
                import java.util.*;
                class Demo {
                    static void main() {
                        Vector v = new Vector();
                        v.elements().foreach(String s) { }
                    }
                }
            """, macros=True)


class TestAForEach:
    def test_array_receiver(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    String[] names = { "ann", "bob" };
                    (names).foreach(String s) { System.out.println(s); }
                }
            }
        """, macros=True)
        assert lines == ["ann", "bob"]

    def test_array_name_receiver(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    String[] names = { "x" };
                    names.foreach(String s) { System.out.println(s); }
                }
            }
        """, macros=True)
        assert lines == ["x"]


class TestVForEach:
    SOURCE = """
        class Demo {
            static void main() {
                use maya.util.ForEach;
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("a");
                v.addElement("b");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """

    def test_optimized_expansion_selected(self):
        """The v.elements() call with a maya.util.Vector receiver picks
        the specialized Mayan: no Enumeration in the output."""
        program = compile_source(self.SOURCE, macros=True)
        source = program.source()
        assert "getElementData" in source
        assert "hasMoreElements" not in source

    def test_same_semantics(self):
        assert run_main(self.SOURCE, macros=True) == ["a", "b"]

    def test_avoids_allocation_and_calls(self):
        """Section 3's claim: the optimized expansion avoids the
        Enumeration allocation and its method calls (measured with the
        interpreter's counters)."""

        def counters_for(vector_class):
            source = f"""
                import java.util.*;
                class Demo {{
                    static void main() {{
                        use maya.util.ForEach;
                        {vector_class} v = new {vector_class}();
                        for (int i = 0; i < 50; i++) v.addElement("x");
                        int n = 0;
                        v.elements().foreach(String s) {{ n++; }}
                    }}
                }}
            """
            program = compile_source(source, macros=True)
            interp = Interpreter(program)
            interp.run_static("Demo")
            return interp.counters

        generic = counters_for("java.util.Vector")
        optimized = counters_for("maya.util.Vector")
        assert optimized.allocations < generic.allocations
        assert optimized.method_calls < generic.method_calls

    def test_java_vector_still_generic(self):
        """A plain java.util.Vector receiver is NOT specialized."""
        program = compile_source(self.SOURCE.replace(
            "maya.util.Vector", "java.util.Vector"), macros=True)
        assert "hasMoreElements" in program.source()


class TestMultipleForeachInOneMethod:
    def test_fresh_names_per_expansion(self):
        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.elements().foreach(String a) { }
                    v.elements().foreach(String b) { }
                }
            }
        """, macros=True)
        source = program.source()
        import re

        names = set(re.findall(r"enumVar\$\d+", source))
        assert len(names) == 2
