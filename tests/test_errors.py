"""Error paths across the stack: diagnostics should be located,
specific, and raised at the right phase.

Every deliberate compile-time failure now carries a structured
Diagnostic; these tests assert on the *rendered* text — the
``file:line:col: [phase]`` head every consumer (mayac, embedders)
sees — rather than only on exception types.
"""

import pytest

from repro.interp import Interpreter, JavaThrow
from repro.lalr import ParseError
from repro.lexer import LexError
from repro.multijava import MultiJavaError
from repro.typecheck import CheckError
from tests.conftest import compile_source, run_main


def rendered(exc_info) -> str:
    """The diagnostic of a raised compiler error, rendered."""
    return exc_info.value.diagnostic.render()


class TestLexErrors:
    def test_location_in_message(self):
        with pytest.raises(LexError) as exc:
            compile_source("class A {\n  int x = `;\n}")
        assert ":2:" in str(exc.value)
        assert "<string>:2:" in rendered(exc)
        assert "[lex]" in rendered(exc)

    def test_unbalanced_braces_points_at_opener(self):
        with pytest.raises(LexError) as exc:
            compile_source("class A { void f() { }")
        text = rendered(exc)
        assert "unexpected end of file" in text
        # The lone '}' closes the method body; the *class* brace at
        # column 9 is the unclosed one, and the diagnostic points at
        # that opening brace, not at EOF.
        assert "unclosed '{' opened at 1:9" in text
        assert "<string>:1:9: [lex]" in text


class TestParseErrors:
    def test_member_level_error(self):
        with pytest.raises(ParseError) as exc:
            compile_source("class A { int int; }")
        text = rendered(exc)
        assert "[parse]" in text
        assert "<string>:1:15" in text

    def test_statement_level_error(self):
        with pytest.raises(ParseError) as exc:
            compile_source("class A { void f() { if; } }")
        assert "[parse]" in rendered(exc)

    def test_expression_error_inside_condition(self):
        with pytest.raises(ParseError) as exc:
            compile_source("class A { void f() { while (1 +) f(); } }")
        text = rendered(exc)
        assert "[parse]" in text
        assert "expected one of" in text


class TestCheckErrors:
    def test_error_names_the_method(self):
        with pytest.raises(CheckError) as exc:
            compile_source("""
                class A { void f() { nosuch(); } }
            """)
        assert "nosuch" in str(exc.value)
        assert "[check]" in rendered(exc)

    def test_duplicate_flag_on_wrong_arity(self):
        with pytest.raises(CheckError) as exc:
            compile_source("""
                class A {
                    int f(int a) { return a; }
                    void g() { f(1, 2); }
                }
            """)
        assert "<string>:4: " not in rendered(exc)  # full line:col head
        assert "[check]" in rendered(exc)

    def test_void_in_expression_position(self):
        with pytest.raises(CheckError) as exc:
            compile_source("""
                class A {
                    void v() { }
                    void g() { int x = v(); }
                }
            """)
        assert "[check]" in rendered(exc)

    def test_unknown_field(self):
        with pytest.raises(CheckError) as exc:
            compile_source("""
                class A { int f() { return this.nothere; } }
            """)
        text = rendered(exc)
        assert "[check]" in text
        assert "<string>:2:" in text

    def test_rendered_diagnostic_shows_source_line(self):
        """Compiling through mayac registers the source, so the engine
        can render the offending line with a caret."""
        from repro.diag import CompileFailed
        from tests.conftest import make_compiler

        compiler = make_compiler()
        with pytest.raises(CheckError) as exc:
            compiler.compile("class A { void f() { nosuch(); } }",
                             "app.maya")
        text = compiler.env.diag.render(exc.value.diagnostic)
        assert "app.maya:1:22: [check]" in text
        assert "  | class A { void f() { nosuch(); } }" in text


class TestRuntimeErrors:
    def test_exception_class_preserved(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class Demo {
                    static void main() {
                        Object o = "string";
                        Integer i = (Integer) o;
                    }
                }
            """)
        assert exc.value.value.class_type.name == \
            "java.lang.ClassCastException"

    def test_enumeration_exhaustion(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                import java.util.*;
                class Demo {
                    static void main() {
                        Vector v = new Vector();
                        Enumeration e = v.elements();
                        e.nextElement();
                    }
                }
            """)
        assert "NoSuchElement" in str(exc.value)

    def test_vector_bounds(self):
        with pytest.raises(JavaThrow):
            run_main("""
                import java.util.*;
                class Demo {
                    static void main() {
                        new Vector().elementAt(3);
                    }
                }
            """)

    def test_string_char_at_bounds(self):
        with pytest.raises(JavaThrow):
            run_main("""
                class Demo {
                    static void main() { "ab".charAt(9); }
                }
            """)


class TestMultiJavaErrors:
    def test_super_without_next_method(self):
        """A super send in the least-specific multimethod has no next
        applicable method."""
        with pytest.raises(MultiJavaError) as exc:
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class D extends C { }
                class Host {
                    String m(C c) { return "x" + super.m(c); }
                    String m(C@D c) { return "y"; }
                }
                class Demo {
                    static void main() { new Host().m(new C()); }
                }
            """, multijava=True)
        assert "[check]" in rendered(exc)

    def test_unknown_receiver_class(self):
        with pytest.raises(MultiJavaError) as exc:
            compile_source("""
                use multijava.MultiJava;
                int NoSuch.m() { return 0; }
            """, multijava=True)
        assert "[check]" in rendered(exc)


class TestHygieneBreakIsDeliberate:
    def test_identifier_unquote_can_capture(self):
        """The explicit escape hatch: an unquoted Identifier refers to
        whatever is in scope at the expansion site."""
        from repro import Mayan, Template
        from repro.ast.nodes import Ident
        from tests.conftest import make_compiler

        class Capture(Mayan):
            result = "Statement"
            pattern = "grab ( ) \\;"
            TEMPLATE = Template("Statement",
                                "System.out.println($name);",
                                name="Identifier")

            def expand(self, ctx):
                return ctx.instantiate(self.TEMPLATE, name=Ident("secret"))

        compiler = make_compiler()
        compiler.provide("ext.Capture", Capture())
        program = compiler.compile("""
            class Demo {
                static void main() {
                    use ext.Capture;
                    String secret = "captured!";
                    grab();
                }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.output == ["captured!"]
