"""Error paths across the stack: diagnostics should be located,
specific, and raised at the right phase."""

import pytest

from repro.interp import Interpreter, JavaThrow
from repro.lalr import ParseError
from repro.lexer import LexError
from repro.multijava import MultiJavaError
from repro.typecheck import CheckError
from tests.conftest import compile_source, run_main


class TestLexErrors:
    def test_location_in_message(self):
        with pytest.raises(LexError) as exc:
            compile_source("class A {\n  int x = `;\n}")
        assert ":2:" in str(exc.value)


class TestParseErrors:
    def test_member_level_error(self):
        with pytest.raises(ParseError):
            compile_source("class A { int int; }")

    def test_statement_level_error(self):
        with pytest.raises(ParseError):
            compile_source("class A { void f() { if; } }")

    def test_expression_error_inside_condition(self):
        with pytest.raises(ParseError):
            compile_source("class A { void f() { while (1 +) f(); } }")

    def test_unbalanced_braces_is_lex_error(self):
        with pytest.raises(LexError):
            compile_source("class A { void f() { }")


class TestCheckErrors:
    def test_error_names_the_method(self):
        with pytest.raises(CheckError) as exc:
            compile_source("""
                class A { void f() { nosuch(); } }
            """)
        assert "nosuch" in str(exc.value)

    def test_duplicate_flag_on_wrong_arity(self):
        with pytest.raises(CheckError):
            compile_source("""
                class A {
                    int f(int a) { return a; }
                    void g() { f(1, 2); }
                }
            """)

    def test_void_in_expression_position(self):
        with pytest.raises(CheckError):
            compile_source("""
                class A {
                    void v() { }
                    void g() { int x = v(); }
                }
            """)

    def test_unknown_field(self):
        with pytest.raises(CheckError):
            compile_source("""
                class A { int f() { return this.nothere; } }
            """)


class TestRuntimeErrors:
    def test_exception_class_preserved(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class Demo {
                    static void main() {
                        Object o = "string";
                        Integer i = (Integer) o;
                    }
                }
            """)
        assert exc.value.value.class_type.name == \
            "java.lang.ClassCastException"

    def test_enumeration_exhaustion(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                import java.util.*;
                class Demo {
                    static void main() {
                        Vector v = new Vector();
                        Enumeration e = v.elements();
                        e.nextElement();
                    }
                }
            """)
        assert "NoSuchElement" in str(exc.value)

    def test_vector_bounds(self):
        with pytest.raises(JavaThrow):
            run_main("""
                import java.util.*;
                class Demo {
                    static void main() {
                        new Vector().elementAt(3);
                    }
                }
            """)

    def test_string_char_at_bounds(self):
        with pytest.raises(JavaThrow):
            run_main("""
                class Demo {
                    static void main() { "ab".charAt(9); }
                }
            """)


class TestMultiJavaErrors:
    def test_super_without_next_method(self):
        """A super send in the least-specific multimethod has no next
        applicable method."""
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class D extends C { }
                class Host {
                    String m(C c) { return "x" + super.m(c); }
                    String m(C@D c) { return "y"; }
                }
                class Demo {
                    static void main() { new Host().m(new C()); }
                }
            """, multijava=True)

    def test_unknown_receiver_class(self):
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                int NoSuch.m() { return 0; }
            """, multijava=True)


class TestHygieneBreakIsDeliberate:
    def test_identifier_unquote_can_capture(self):
        """The explicit escape hatch: an unquoted Identifier refers to
        whatever is in scope at the expansion site."""
        from repro import Mayan, Template
        from repro.ast.nodes import Ident
        from tests.conftest import make_compiler

        class Capture(Mayan):
            result = "Statement"
            pattern = "grab ( ) \\;"
            TEMPLATE = Template("Statement",
                                "System.out.println($name);",
                                name="Identifier")

            def expand(self, ctx):
                return ctx.instantiate(self.TEMPLATE, name=Ident("secret"))

        compiler = make_compiler()
        compiler.provide("ext.Capture", Capture())
        program = compiler.compile("""
            class Demo {
                static void main() {
                    use ext.Capture;
                    String secret = "captured!";
                    grab();
                }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.output == ["captured!"]
