"""Hygiene and referential transparency (paper 4.3, experiment E8)."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.hygiene import Environment, HygieneError, make_id
from repro.patterns import Template
from tests.conftest import run_main


@pytest.fixture
def ctx():
    return CompileContext(CompileEnv())


class TestStaticFreeVariableDetection:
    def test_free_variable_rejected_at_compile_time(self, ctx):
        """Maya detects references to unbound variables when a template
        is compiled, not when it is executed."""
        template = Template("Statement", "f(undefined_var);")
        with pytest.raises(HygieneError) as exc:
            template.compiled(ctx.env)
        assert "undefined_var" in str(exc.value)

    def test_template_binders_are_not_free(self, ctx):
        template = Template("Statement", "{ int local = 1; f(local); }")
        template.compiled(ctx.env)  # no error

    def test_class_references_are_not_free(self, ctx):
        template = Template("Statement", "System.err.println($m);",
                            m="Expression")
        template.compiled(ctx.env)

    def test_unknown_type_name_rejected(self, ctx):
        template = Template("Statement", "NoSuchClass v = $x;",
                            x="Expression")
        with pytest.raises(HygieneError):
            template.compiled(ctx.env)

    def test_unqualified_method_calls_allowed(self, ctx):
        # A bare method name resolves against the expansion site's class.
        template = Template("Statement", "helper($x);", x="Expression")
        template.compiled(ctx.env)

    def test_unquoted_identifier_exempt(self, ctx):
        # Unquoting an Identifier is the explicit hygiene break.
        template = Template("Statement", "f($name);", name="Identifier")
        template.compiled(ctx.env)


class TestRenaming:
    def test_no_capture_of_user_variables(self):
        """The macro's temporary cannot capture the user's variable of
        the same name (the foreach enumVar guarantee)."""
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    String enumVar = "user value";
                    Vector v = new Vector();
                    v.addElement("element");
                    v.elements().foreach(String s) {
                        System.out.println(enumVar);
                        System.out.println(s);
                    }
                }
            }
        """, macros=True)
        assert lines == ["user value", "element"]

    def test_nested_expansions_do_not_collide(self):
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector outer = new Vector();
                    outer.addElement("a");
                    Vector inner = new Vector();
                    inner.addElement("x");
                    inner.addElement("y");
                    outer.elements().foreach(String o) {
                        inner.elements().foreach(String i) {
                            System.out.println(o + i);
                        }
                    }
                }
            }
        """, macros=True)
        assert lines == ["ax", "ay"]

    def test_make_id_unique(self):
        names = {make_id("t").name for _ in range(100)}
        assert len(names) == 100

    def test_environment_facade(self):
        ident = Environment.make_id()
        assert "$" in ident.name


class TestReferentialTransparency:
    def test_template_types_resolve_at_definition(self, ctx):
        template = Template("Statement", "String s = $x;", x="Expression")
        compiled = template.compiled(ctx.env)
        # Find the strict-type mark: the TypeName was resolved to
        # java.lang.String at template compile time.
        stmt = template.instantiate(
            ctx, x=n.Literal("String", "v"))
        assert isinstance(stmt.type_name, n.StrictTypeName)
        assert stmt.type_name.type.name == "java.lang.String"

    def test_shadowing_package_cannot_subvert_template(self):
        """The paper's package-p example: a local class named java (or a
        field named System) cannot change what a template's
        java.util.Enumeration or System.err means."""
        lines = run_main("""
            import java.util.*;
            class System_ { }
            class Demo {
                static int java = 5;
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("ok");
                    v.elements().foreach(String s) {
                        System.out.println(s + java);
                    }
                }
            }
        """, macros=True)
        # The template's java.util.Enumeration resolved at definition
        # time even though 'java' names a static field here.
        assert lines == ["ok5"]

    def test_strict_type_in_expansion_output(self):
        from tests.conftest import compile_source

        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.elements().foreach(Object o) { }
                }
            }
        """, macros=True)
        assert "java.util.Enumeration" in program.source()
