"""Golden-file expansion tests.

Each case compiles a source program (with the macro library), unparses
the fully expanded output, and compares it byte-for-byte against a
snapshot in ``tests/golden/``.  Any change to a macro's expansion —
even one character — fails these tests; refresh intentionally with::

    pytest tests/test_golden.py --update-goldens

Every compile runs with the tracer *active*, so trace instrumentation
can never change expansion output (the overhead claim is behavioural,
not just temporal).  Fresh-name counters are reset per case, making the
hygienic ``name$N`` suffixes deterministic.
"""

import pathlib

import pytest

from repro import trace
from repro.hygiene.fresh import reset_fresh_names
from tests.conftest import compile_source

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: name -> Maya source.  One case per macro in src/repro/macros/, plus
#: layered/nested expansions and the shipped example program.
CASES = {
    "foreach_enum": """
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Hashtable h = new Hashtable();
                h.put("one", "1");
                h.keys().foreach(String st) {
                    System.out.println(st + " = " + h.get(st));
                }
            }
        }
    """,
    "foreach_vector": """
        class Demo {
            static void main() {
                use maya.util.ForEach;
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("a");
                v.addElement("b");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """,
    "foreach_array": """
        class Demo {
            static void main() {
                use maya.util.ForEach;
                java.lang.Object[] xs = new java.lang.Object[2];
                xs.foreach(Object x) {
                    System.out.println(x);
                }
            }
        }
    """,
    "foreach_nested": """
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Vector rows = new Vector();
                Vector cols = new Vector();
                rows.elements().foreach(String r) {
                    cols.elements().foreach(String c) {
                        System.out.println(r + c);
                    }
                }
            }
        }
    """,
    "printf": """
        class Demo {
            static void main() {
                use maya.util.Printf;
                System.out.printf("%s has %d items\\n", "cart", 3);
            }
        }
    """,
    "assertion": """
        class Demo {
            static void main() {
                use maya.util.Assert;
                assert(1 + 1 == 2);
                assert(2 > 1, "ordering");
            }
        }
    """,
    "typedef": """
        class Demo {
            static void main() {
                use maya.util.Typedef;
                typedef (Table = java.util.Hashtable) {
                    Table t = new Table();
                    t.put("k", "v");
                    System.out.println(t.get("k"));
                }
            }
        }
    """,
    "comprehension": """
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.Collect;
                Vector names = new Vector();
                names.addElement("ann");
                Vector upper = new Vector();
                collect(upper, s.toUpperCase() : String s : names.elements());
            }
        }
    """,
}


def expand_case(name: str) -> str:
    """Deterministically compile a case with tracing on; return the
    unparsed post-expansion source."""
    if name == "hello_example":
        source = (EXAMPLES_DIR / "hello.maya").read_text()
    else:
        source = CASES[name]
    reset_fresh_names()
    tracer = trace.activate()
    try:
        program = compile_source(source, macros=True)
        expanded = program.source()
    finally:
        trace.deactivate()
    # Tracing must have observed the compile (golden runs double as
    # trace smoke tests) without perturbing it.
    assert tracer.spans_of_kind("phase"), "tracer saw no compile phases"
    return expanded + "\n"


ALL_CASES = sorted(CASES) + ["hello_example"]


@pytest.mark.parametrize("name", ALL_CASES)
def test_golden_expansion(name, request):
    expanded = expand_case(name)
    golden_path = GOLDEN_DIR / f"{name}.java"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(expanded)
        pytest.skip(f"updated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; run "
        f"pytest tests/test_golden.py --update-goldens"
    )
    expected = golden_path.read_text()
    assert expanded == expected, (
        f"expansion of {name!r} changed; if intentional, refresh with "
        f"--update-goldens"
    )


def test_goldens_contain_expansions():
    """Sanity: the snapshots really captured expanded (not raw) code."""
    assert "hasMoreElements" in (GOLDEN_DIR / "foreach_enum.java").read_text()
    assert "getElementData" in (GOLDEN_DIR / "foreach_vector.java").read_text()


def test_expansion_is_deterministic():
    """Two identical compiles (with counter resets) match exactly —
    the precondition that makes golden files meaningful."""
    assert expand_case("foreach_enum") == expand_case("foreach_enum")
