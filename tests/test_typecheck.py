"""Type checking: expression types, name resolution, and static errors."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lexer import stream_lex
from repro.typecheck import CheckError, Scope, static_type_of
from repro.types import BOOLEAN, DOUBLE, INT, array_of
from tests.conftest import compile_source


def typed_expr(source: str, bindings=None):
    env = CompileEnv()
    scope = Scope(env=env)
    for name, type_spec in (bindings or {}).items():
        scope.define(name, _resolve(env, type_spec))
    ctx = CompileContext(env, scope)
    parser = Parser(env.tables(), ctx)
    expr, _ = parser.parse("Expression", stream_lex(source))
    return expr, static_type_of(expr), env


def _resolve(env, spec):
    dims = 0
    while spec.endswith("[]"):
        spec = spec[:-2]
        dims += 1
    return env.registry.resolve_type(tuple(spec.split(".")), dims)


def type_of(source: str, bindings=None):
    return typed_expr(source, bindings)[1]


class TestLiteralTypes:
    def test_int(self):
        assert type_of("42") is INT

    def test_double(self):
        assert type_of("1.5") is DOUBLE

    def test_boolean(self):
        assert type_of("true") is BOOLEAN

    def test_string(self):
        assert str(type_of('"hi"')) == "java.lang.String"

    def test_null(self):
        assert type_of("null").is_reference()


class TestOperators:
    def test_numeric_promotion(self):
        assert type_of("1 + 2") is INT
        assert type_of("1 + 2.0") is DOUBLE

    def test_string_concatenation(self):
        assert str(type_of('"a" + 1')) == "java.lang.String"
        assert str(type_of('1 + "a"')) == "java.lang.String"

    def test_comparison(self):
        assert type_of("1 < 2") is BOOLEAN

    def test_logical(self):
        assert type_of("true && false") is BOOLEAN

    def test_logical_needs_booleans(self):
        with pytest.raises(CheckError):
            type_of("1 && true")

    def test_arithmetic_needs_numbers(self):
        with pytest.raises(CheckError):
            type_of('"a" - 1')

    def test_conditional_unifies(self):
        assert type_of("true ? 1 : 2") is INT
        assert type_of("true ? 1 : 2.0") is DOUBLE

    def test_unary(self):
        assert type_of("-1") is INT
        assert type_of("!true") is BOOLEAN

    def test_not_needs_boolean(self):
        with pytest.raises(CheckError):
            type_of("!1")


class TestNames:
    def test_local_variable(self):
        assert type_of("x", {"x": "int"}) is INT

    def test_unknown_name(self):
        with pytest.raises(CheckError):
            type_of("nosuch")

    def test_field_chain(self):
        # System.out is a static field of type PrintStream.
        assert str(type_of("System.out")) == "java.io.PrintStream"

    def test_array_length(self):
        assert type_of("xs.length", {"xs": "int[]"}) is INT

    def test_static_method_call(self):
        assert type_of('Integer.parseInt("3")') is INT

    def test_instance_method_on_local(self):
        assert type_of("v.size()", {"v": "java.util.Vector"}) is INT

    def test_chained_calls(self):
        source = "v.elements().hasMoreElements()"
        assert type_of(source, {"v": "java.util.Vector"}) is BOOLEAN

    def test_resolution_cached(self):
        expr, _, _ = typed_expr("x", {"x": "int"})
        assert expr.resolution[0] == "local"


class TestCallsAndNews:
    def test_new_object(self):
        assert str(type_of("new java.util.Vector()")) == "java.util.Vector"

    def test_new_with_args(self):
        assert str(type_of("new java.lang.Integer(3)")) == "java.lang.Integer"

    def test_no_matching_constructor(self):
        with pytest.raises(CheckError):
            type_of('new java.lang.Integer("x", "y")')

    def test_cannot_instantiate_interface(self):
        with pytest.raises(CheckError):
            type_of("new java.util.Enumeration()")

    def test_new_array(self):
        assert type_of("new int[3]") is array_of(INT)

    def test_wrong_argument_type(self):
        with pytest.raises(CheckError):
            type_of("v.elementAt(true)", {"v": "java.util.Vector"})

    def test_overload_selection(self):
        # println(int) vs println(String): exact match picks int.
        expr, _, _ = typed_expr("System.out.println(3)")
        assert expr.target[2].param_types == (INT,)


class TestCastsAndInstanceof:
    def test_valid_downcast(self):
        source = "(String) o"
        assert str(type_of(source, {"o": "java.lang.Object"})) == \
            "java.lang.String"

    def test_invalid_cast(self):
        with pytest.raises(CheckError):
            type_of("(java.util.Vector) s", {"s": "java.lang.String"})

    def test_primitive_cast(self):
        assert type_of("(int) 2.5") is INT

    def test_instanceof(self):
        assert type_of("o instanceof String", {"o": "java.lang.Object"}) \
            is BOOLEAN


class TestAssignment:
    def test_assign_type(self):
        assert type_of("x = 1", {"x": "int"}) is INT

    def test_widening_assign(self):
        assert type_of("d = 1", {"d": "double"}) is DOUBLE

    def test_narrowing_rejected(self):
        with pytest.raises(CheckError):
            type_of("x = 1.5", {"x": "int"})

    def test_reference_assign_subtype(self):
        assert type_of("o = s", {"o": "java.lang.Object",
                                 "s": "java.lang.String"}) is not None

    def test_reference_assign_unrelated_rejected(self):
        with pytest.raises(CheckError):
            type_of("s = v", {"s": "java.lang.String",
                              "v": "java.util.Vector"})


class TestProgramLevelChecks:
    def test_return_type_mismatch(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Bad { int f() { return "no"; } }
            """)

    def test_condition_must_be_boolean(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Bad { void f() { if (1) return; } }
            """)

    def test_bad_initializer(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Bad { void f() { int x = "s"; } }
            """)

    def test_unknown_type_in_member(self):
        with pytest.raises(Exception):
            compile_source("class Bad { NoSuchType f; }")

    def test_forward_reference_between_classes(self):
        # B is declared after A but A uses it: the shaper's two passes
        # make this work.
        program = compile_source("""
            class A { B partner() { return new B(); } }
            class B { A partner() { return new A(); } }
        """)
        assert "A" in [c.type.simple_name for c in program.classes.values()]

    def test_field_visible_in_method(self):
        compile_source("""
            class C { int count; int get() { return count; } }
        """)

    def test_param_shadows_field(self):
        compile_source("""
            class C {
                int x;
                int f(int x) { return x; }
            }
        """)

    def test_imports_resolve_simple_names(self):
        compile_source("""
            import java.util.Vector;
            class C { Vector v; }
        """)

    def test_static_method_has_no_this(self):
        with pytest.raises(CheckError):
            compile_source("""
                class C { static int f() { return this.g(); } int g() { return 1; } }
            """)
