import java.util.*;
class Demo {
    static void main() {
        /* use maya.util.ForEach */
        Vector rows = new Vector();
        Vector cols = new Vector();
        for (java.util.Enumeration enumVar$1 = rows.elements(); enumVar$1.hasMoreElements(); ) {
            String r;
            r = (java.lang.String) enumVar$1.nextElement();
            for (java.util.Enumeration enumVar$2 = cols.elements(); enumVar$2.hasMoreElements(); ) {
                String c;
                c = (java.lang.String) enumVar$2.nextElement();
                System.out.println(r + c);
            }
        }
    }
}
