class Demo {
    static void main() {
        /* use maya.util.Typedef */
        /* use _Subst */
        java.util.Hashtable t = new java.util.Hashtable();
        t.put("k", "v");
        System.out.println(t.get("k"));
    }
}
