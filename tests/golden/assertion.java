class Demo {
    static void main() {
        /* use maya.util.Assert */
        if (!(1 + 1 == 2)) throw new java.lang.AssertionError("1 + 1 == 2");
        if (!(2 > 1)) throw new java.lang.AssertionError("ordering");
    }
}
