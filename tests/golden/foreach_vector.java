class Demo {
    static void main() {
        /* use maya.util.ForEach */
        maya.util.Vector v = new maya.util.Vector();
        v.addElement("a");
        v.addElement("b");
        {
            maya.util.Vector vec$4 = v;
            int len$3 = vec$4.size();
            java.lang.Object[] arr$1 = vec$4.getElementData();
            for (int i$2 = 0; i$2 < len$3; i$2++) {
                String s;
                s = (java.lang.String) arr$1[i$2];
                System.out.println(s);
            }
        }
    }
}
