import java.util.*;
class Demo {
    static void main() {
        /* use maya.util.Collect */
        Vector names = new Vector();
        names.addElement("ann");
        Vector upper = new Vector();
        for (java.util.Enumeration enumVar$1 = names.elements(); enumVar$1.hasMoreElements(); ) {
            String s;
            s = (java.lang.String) enumVar$1.nextElement();
            upper.addElement(s.toUpperCase());
        }
    }
}
