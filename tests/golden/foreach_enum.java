import java.util.*;
class Demo {
    static void main() {
        /* use maya.util.ForEach */
        Hashtable h = new Hashtable();
        h.put("one", "1");
        for (java.util.Enumeration enumVar$1 = h.keys(); enumVar$1.hasMoreElements(); ) {
            String st;
            st = (java.lang.String) enumVar$1.nextElement();
            System.out.println(st + " = " + h.get(st));
        }
    }
}
