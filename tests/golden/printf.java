class Demo {
    static void main() {
        /* use maya.util.Printf */
        System.out.print("" + "cart" + " has " + 3 + " items\n");
    }
}
