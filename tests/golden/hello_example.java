import java.util.*;
class Hello {
    static void main() {
        /* use maya.util.ForEach */
        Vector greetings = new Vector();
        greetings.addElement("hello, maya");
        greetings.addElement("multimethods on productions");
        for (java.util.Enumeration enumVar$1 = greetings.elements(); enumVar$1.hasMoreElements(); ) {
            String line;
            line = (java.lang.String) enumVar$1.nextElement();
            System.out.println(line);
        }
    }
}
