class Demo {
    static void main() {
        /* use maya.util.ForEach */
        java.lang.Object[] xs = new java.lang.Object[2];
        {
            java.lang.Object[] arr$1 = xs;
            int len$3 = arr$1.length;
            for (int i$2 = 0; i$2 < len$3; i$2++) {
                Object x;
                x = (java.lang.Object) arr$1[i$2];
                System.out.println(x);
            }
        }
    }
}
