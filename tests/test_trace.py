"""The observability layer: span tracing, provenance, trace metrics."""

import json

import pytest

from repro import perf, trace
from repro.diag import SourceSpan
from repro.mayac import main
from tests.conftest import compile_source, make_compiler

FOREACH_SOURCE = """
    import java.util.*;
    class Demo {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.addElement("traced");
            v.elements().foreach(String s) {
                System.out.println(s);
            }
        }
    }
"""


@pytest.fixture
def tracer():
    tracer = trace.activate()
    yield tracer
    trace.deactivate()


def compile_traced(source: str, tracer) -> "trace.Tracer":
    compile_source(source, macros=True)
    return tracer


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest(self):
        tracer = trace.Tracer()
        with tracer.span("compile", "outer"):
            with tracer.span("phase", "inner"):
                pass
            with tracer.span("phase", "sibling"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert all(child.parent_id == outer.id for child in outer.children)

    def test_span_timing_contained(self):
        tracer = trace.Tracer()
        with tracer.span("compile", "outer"):
            with tracer.span("phase", "inner"):
                pass
        outer, = tracer.roots
        inner, = outer.children
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_exception_unwinds_cleanly(self):
        tracer = trace.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("compile", "outer"):
                with tracer.span("phase", "inner"):
                    raise RuntimeError("boom")
        assert tracer.stack == []
        assert all(span.end is not None for span in tracer.iter_spans())

    def test_module_level_span_noop_when_inactive(self):
        assert trace.active is None
        with trace.span("phase", "nothing") as span:
            assert span is None

    def test_jsonl_roundtrip(self):
        tracer = trace.Tracer()
        with tracer.span("compile", "unit", filename="x.maya"):
            with tracer.span("phase", "lex"):
                pass
        records = [json.loads(line) for line in
                   tracer.to_jsonl({"dispatches": 3}).splitlines()]
        assert records[0]["type"] == "trace"
        assert records[0]["spans"] == 2
        spans = [r for r in records if r["type"] == "span"]
        assert [s["kind"] for s in spans] == ["compile", "phase"]
        assert spans[1]["parent"] == spans[0]["id"]
        assert records[-1] == {"type": "metrics", "dispatches": 3}


# ---------------------------------------------------------------------------
# Compile-pipeline spans
# ---------------------------------------------------------------------------


class TestCompileSpans:
    def test_phases_recorded(self, tracer):
        compile_traced("class Empty { }", tracer)
        names = [span.name for span in tracer.spans_of_kind("phase")]
        assert names == ["lex", "parse+expand", "shape", "bodies+check"]

    def test_expansion_spans_record_rewrite(self, tracer):
        compile_traced(FOREACH_SOURCE, tracer)
        expansions = tracer.spans_of_kind("expand")
        assert len(expansions) == 1
        span = expansions[0]
        assert span.attrs["mayan"] == "EForEach"
        assert "foreach" in span.attrs["before"]
        assert "hasMoreElements" in span.attrs["after"]
        assert span.attrs["location"].endswith(":8:13")

    def test_dispatch_span_wraps_expansion(self, tracer):
        compile_traced(FOREACH_SOURCE, tracer)
        dispatch, = tracer.spans_of_kind("dispatch")
        assert dispatch.attrs["candidates"] >= 1
        assert any(child.kind == "expand" for child in dispatch.children)

    def test_template_span_nested_in_expansion(self, tracer):
        compile_traced(FOREACH_SOURCE, tracer)
        expand, = tracer.spans_of_kind("expand")
        kinds = {child.kind for child in expand.children}
        assert "template" in kinds

    def test_no_spans_for_plain_reductions(self, tracer):
        compile_traced("class Plain { static void main() { int x = 1; } }",
                       tracer)
        assert tracer.spans_of_kind("expand") == []
        assert tracer.spans_of_kind("dispatch") == []

    def test_tracing_does_not_change_expansion(self):
        from repro.hygiene.fresh import reset_fresh_names

        reset_fresh_names()
        plain = compile_source(FOREACH_SOURCE, macros=True).source()
        trace.activate()
        try:
            reset_fresh_names()
            traced = compile_source(FOREACH_SOURCE, macros=True).source()
        finally:
            trace.deactivate()
        assert traced == plain


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


class TestProvenance:
    def test_generated_nodes_carry_origin(self):
        program = compile_source(FOREACH_SOURCE, macros=True)
        generated = [node for node in _all_nodes(program)
                     if node.origin is not None]
        assert generated, "expansion produced no origin-stamped nodes"
        mayans = {node.origin.mayan for node in generated}
        assert "EForEach" in mayans

    def test_origin_chain_terminates_at_real_span(self):
        program = compile_source(FOREACH_SOURCE, macros=True)
        for node in _all_nodes(program):
            if node.origin is None:
                continue
            assert node.origin.root.use_site.is_known, \
                f"origin chain of {node!r} dead-ends without a source span"

    def test_user_written_nodes_have_no_origin(self):
        program = compile_source(
            "class Plain { static void main() { int x = 1; } }")
        assert all(node.origin is None for node in _all_nodes(program))

    def test_nested_expansion_chains_origins(self):
        # collect() expands into foreach syntax that foreach Mayans then
        # expand again: inner nodes must link both activations.
        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.Collect;
                    Vector src = new Vector();
                    Vector dst = new Vector();
                    collect(dst, x : Object x : src.elements());
                }
            }
        """, macros=True)
        chains = [
            [link.mayan for link in node.origin.chain()]
            for node in _all_nodes(program) if node.origin is not None
        ]
        assert any(len(chain) >= 2 for chain in chains), \
            "no node records the nested collect -> foreach expansion"

    def test_check_error_in_generated_code_names_use_site(self):
        # foreach(int n) over a Vector casts Object to int inside the
        # *generated* code; the error must point back at the use site.
        with pytest.raises(Exception) as excinfo:
            compile_source("""
                import java.util.*;
                class Demo {
                    static void main() {
                        use maya.util.ForEach;
                        Vector v = new Vector();
                        v.elements().foreach(int n) {
                            System.out.println(n);
                        }
                    }
                }
            """, macros=True)
        notes = getattr(excinfo.value, "diagnostic").notes
        assert any("expanded from" in note and ":7:" in note
                   for note in notes), notes

    def test_origin_describe_mentions_template(self):
        program = compile_source(FOREACH_SOURCE, macros=True)
        described = [node.origin.describe() for node in _all_nodes(program)
                     if node.origin is not None and node.origin.template]
        assert any("via Template(" in text for text in described)

    def test_provenance_notes_elide_long_chains(self):
        span = SourceSpan("f.maya", 1, 1)
        origin = trace.Origin("M0", None, span)
        for index in range(1, 12):
            origin = trace.Origin(f"M{index}", None, span, origin)

        class Fake:
            pass

        node = Fake()
        node.origin = origin
        notes = trace.provenance_notes(node)
        assert len(notes) == trace.MAX_ORIGIN_NOTES + 1
        assert notes[-1].startswith("...")

    def test_unparse_provenance_annotation(self):
        program = compile_source(FOREACH_SOURCE, macros=True)
        annotated = program.source(provenance=True)
        assert "/* from EForEach @" in annotated
        # The plain unparse stays comment-free.
        assert "/* from" not in program.source()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_expansion_counters_and_depth_histogram(self):
        profiler = perf.activate(perf.Profiler())
        try:
            compile_source(FOREACH_SOURCE, macros=True)
        finally:
            perf.deactivate()
        assert profiler.counters["expansions"] == 1
        assert profiler.counters["expansions[EForEach]"] == 1
        depth = profiler.histograms["expansion.depth"]
        assert depth.count == 1 and depth.max == 1

    def test_histogram_buckets_and_stats(self):
        histogram = perf.Histogram("h")
        for value in (1, 1, 3, 9, 200):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 1 and snap["max"] == 200
        assert snap["buckets"]["<=1"] == 2
        assert snap["buckets"][">128"] == 1

    def test_profiler_snapshot_shape(self):
        profiler = perf.Profiler()
        with profiler.timed("lex"):
            pass
        profiler.count("expansions", 2)
        profiler.observe("expansion.depth", 3)
        snap = profiler.snapshot()
        assert "lex" in snap["phases"]
        assert snap["counters"] == {"expansions": 2}
        assert snap["histograms"][0]["name"] == "expansion.depth"
        json.dumps(snap)  # must be plain data


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


class TestCliTrace:
    @pytest.fixture
    def demo_file(self, tmp_path):
        path = tmp_path / "demo.maya"
        path.write_text(FOREACH_SOURCE.replace("class Demo", "class Demo"))
        return str(path)

    def test_trace_out_writes_valid_jsonl(self, demo_file, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main([demo_file, "--trace-out", str(out)]) == 0
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert records[0]["type"] == "trace"
        kinds = {r["kind"] for r in records if r["type"] == "span"}
        assert {"compile", "phase", "expand"} <= kinds
        final = records[-1]
        assert final["type"] == "metrics"
        # The final metrics record is a registry snapshot — the same
        # schema --metrics-out json writes.
        assert final["schema"] == "maya.metrics/1"
        families = {f["name"]: f for f in final["families"]}
        dispatches = sum(
            s["value"]
            for s in families["maya_dispatch_reductions_total"]["samples"]
        )
        assert dispatches > 0
        assert families["maya_trace_spans_total"]["kind"] == "counter"

    def test_trace_out_includes_profile_metrics(self, demo_file, tmp_path,
                                                capsys):
        out = tmp_path / "t.jsonl"
        assert main([demo_file, "--trace-out", str(out), "--profile"]) == 0
        final = json.loads(out.read_text().splitlines()[-1])
        assert "profile" in final
        assert final["profile"]["counters"]["expansions"] >= 1

    def test_trace_renders_human_view(self, demo_file, capsys):
        assert main([demo_file, "--trace"]) == 0
        err = capsys.readouterr().err
        assert "== mayac trace ==" in err
        assert "expand EForEach" in err
        assert "before:" in err and "after:" in err

    def test_provenance_flag(self, demo_file, capsys):
        assert main([demo_file, "--expand", "--provenance"]) == 0
        assert "/* from EForEach @" in capsys.readouterr().out

    def test_tracer_deactivated_after_run(self, demo_file):
        assert main([demo_file, "--trace"]) == 0
        assert trace.active is None


def _all_nodes(program):
    """Every AST node reachable from a compiled program's units."""
    from repro.ast import nodes as n

    seen = []

    def walk(node):
        seen.append(node)
        for child in node.children():
            walk(child)

    for unit in program.units:
        walk(unit)
    # UseStmt bodies and forced lazy bodies are reached via children();
    # also chase forced LazyNodes' values.
    for node in list(seen):
        if isinstance(node, n.LazyNode) and node.is_forced():
            walk(node.force())
    return seen
