"""``syntax case`` (paper 3.2): pattern matching outside dispatch."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lexer import stream_lex
from repro.patterns import TemplateError, syntax_case


@pytest.fixture
def ctx():
    return CompileContext(CompileEnv())


def parse_expr(ctx, source):
    parser = Parser(ctx.env.tables(), ctx)
    value, _ = parser.parse("Expression", stream_lex(source))
    return value


class TestSyntaxCase:
    def test_matches_structure(self, ctx):
        expr = parse_expr(ctx, "a + b")
        result = syntax_case(ctx, "Expression", expr, [
            ("Expression l \\* Expression r", lambda l, r: "product"),
            ("Expression l + Expression r", lambda l, r: "sum"),
        ])
        assert result == "sum"

    def test_bindings_passed_to_body(self, ctx):
        expr = parse_expr(ctx, "1 + 2")
        result = syntax_case(ctx, "Expression", expr, [
            ("Expression l + Expression r",
             lambda l, r: (l.value, r.value)),
        ])
        assert result == (1, 2)

    def test_first_match_wins(self, ctx):
        expr = parse_expr(ctx, "f(9)")
        result = syntax_case(ctx, "Expression", expr, [
            ("MethodName m (ArgList a)", lambda m, a: "call"),
            (None, lambda: "default"),
        ])
        assert result == "call"

    def test_default_case(self, ctx):
        expr = parse_expr(ctx, "42")
        result = syntax_case(ctx, "Expression", expr, [
            ("Expression l + Expression r", lambda l, r: "sum"),
            (None, lambda: "default"),
        ])
        assert result == "default"

    def test_fallthrough_without_default_raises(self, ctx):
        expr = parse_expr(ctx, "42")
        with pytest.raises(TemplateError):
            syntax_case(ctx, "Expression", expr, [
                ("Expression l + Expression r", lambda l, r: "sum"),
            ])

    def test_token_value_case(self, ctx):
        expr = parse_expr(ctx, "describe(x)")
        result = syntax_case(ctx, "Expression", expr, [
            ("describe (ArgList a)", lambda a: "described"),
            (None, lambda: "other"),
        ])
        assert result == "described"

    def test_statement_cases(self, ctx):
        parser = Parser(ctx.env.tables(), ctx)
        stmt, _ = parser.parse("Statement", stream_lex("while (x) f();"))
        result = syntax_case(ctx, "Statement", stmt, [
            ("if (Expression c) Statement s", lambda c, s: "if"),
            ("while (Expression c) Statement s", lambda c, s: "while"),
        ])
        assert result == "while"
