"""The interpreter: Java semantics of the expanded programs."""

import pytest

from repro.interp import Interpreter, JavaThrow
from tests.conftest import compile_source, run_main


def run(body: str, prelude: str = ""):
    return run_main(f"""
        import java.util.*;
        {prelude}
        class Demo {{
            static void main() {{
                {body}
            }}
        }}
    """)


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert run("System.out.println(7 / 2); System.out.println(-7 / 2);") \
            == ["3", "-3"]

    def test_modulo_sign_follows_dividend(self):
        assert run("System.out.println(-7 % 3); System.out.println(7 % -3);") \
            == ["-1", "1"]

    def test_division_by_zero_throws(self):
        with pytest.raises(JavaThrow) as exc:
            run("int x = 1 / 0;")
        assert "ArithmeticException" in str(exc.value)

    def test_double_division(self):
        assert run("System.out.println(7.0 / 2.0);") == ["3.5"]

    def test_shift_operators(self):
        assert run("System.out.println(1 << 4);") == ["16"]
        assert run("System.out.println(-8 >> 1);") == ["-4"]
        assert run("System.out.println(-1 >>> 28);") == ["15"]

    def test_bitwise(self):
        assert run("System.out.println((12 & 10) + (12 | 10) + (12 ^ 10));") \
            == ["28"]

    def test_char_arithmetic(self):
        assert run("char c = 'a'; int x = c + 1; System.out.println(x);") \
            == ["98"]

    def test_cast_truncation(self):
        assert run("System.out.println((int) 3.9); System.out.println((int) -3.9);") \
            == ["3", "-3"]

    def test_int_overflow_wraps_on_cast(self):
        assert run("System.out.println((int) (2147483647L + 1L));") \
            == ["-2147483648"]

    def test_compound_assignment(self):
        assert run("int x = 10; x += 5; x *= 2; x -= 3; System.out.println(x);") \
            == ["27"]

    def test_increment_decrement(self):
        assert run("""
            int x = 5;
            System.out.println(x++);
            System.out.println(x);
            System.out.println(++x);
            System.out.println(x--);
        """) == ["5", "6", "7", "7"]


class TestControlFlow:
    def test_if_else(self):
        assert run("""
            int x = 3;
            if (x > 2) System.out.println("big");
            else System.out.println("small");
        """) == ["big"]

    def test_while_with_break(self):
        assert run("""
            int i = 0;
            while (true) { if (i == 3) break; i++; }
            System.out.println(i);
        """) == ["3"]

    def test_continue(self):
        assert run("""
            String s = "";
            for (int i = 0; i < 5; i++) {
                if (i % 2 == 0) continue;
                s = s + i;
            }
            System.out.println(s);
        """) == ["13"]

    def test_do_while(self):
        assert run("""
            int i = 10;
            do { i++; } while (i < 5);
            System.out.println(i);
        """) == ["11"]

    def test_nested_loops(self):
        assert run("""
            int total = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 3; j++)
                    total += i * j;
            System.out.println(total);
        """) == ["9"]

    def test_short_circuit_and(self):
        assert run("""
            int[] xs = new int[1];
            if (xs.length > 3 && xs[5] == 0) System.out.println("no");
            System.out.println("safe");
        """) == ["safe"]

    def test_conditional_expression(self):
        assert run('System.out.println(1 < 2 ? "yes" : "no");') == ["yes"]


class TestObjects:
    def test_fields_and_constructor(self):
        assert run_main("""
            class Point {
                int x; int y;
                Point(int x, int y) { this.x = x; this.y = y; }
                int sum() { return x + y; }
            }
            class Demo {
                static void main() {
                    Point p = new Point(3, 4);
                    System.out.println(p.sum());
                    p.x = 10;
                    System.out.println(p.sum());
                }
            }
        """) == ["7", "14"]

    def test_field_initializers(self):
        assert run_main("""
            class C { int x = 41; int y = x + 1; }
            class Demo {
                static void main() { System.out.println(new C().y); }
            }
        """) == ["42"]

    def test_virtual_dispatch(self):
        assert run_main("""
            class Animal { String speak() { return "..."; } }
            class Dog extends Animal { String speak() { return "woof"; } }
            class Demo {
                static void main() {
                    Animal a = new Dog();
                    System.out.println(a.speak());
                }
            }
        """) == ["woof"]

    def test_super_call(self):
        assert run_main("""
            class Base { String name() { return "base"; } }
            class Sub extends Base {
                String name() { return "sub:" + super.name(); }
            }
            class Demo {
                static void main() {
                    System.out.println(new Sub().name());
                }
            }
        """) == ["sub:base"]

    def test_constructor_chaining(self):
        assert run_main("""
            class Base { int x; Base() { x = 1; } }
            class Sub extends Base { int y; Sub() { y = x + 1; } }
            class Demo {
                static void main() { System.out.println(new Sub().y); }
            }
        """) == ["2"]

    def test_explicit_super_constructor(self):
        assert run_main("""
            class Base { int x; Base(int x) { this.x = x; } }
            class Sub extends Base { Sub() { super(41); x++; } }
            class Demo {
                static void main() { System.out.println(new Sub().x); }
            }
        """) == ["42"]

    def test_this_constructor_delegation(self):
        assert run_main("""
            class C {
                int x;
                C() { this(99); }
                C(int x) { this.x = x; }
            }
            class Demo {
                static void main() { System.out.println(new C().x); }
            }
        """) == ["99"]

    def test_static_fields(self):
        assert run_main("""
            class Counter {
                static int count = 0;
                static void bump() { count++; }
            }
            class Demo {
                static void main() {
                    Counter.bump(); Counter.bump();
                    System.out.println(Counter.count);
                }
            }
        """) == ["2"]

    def test_instanceof_and_cast(self):
        assert run_main("""
            class A { }
            class B extends A { int only() { return 7; } }
            class Demo {
                static void main() {
                    A x = new B();
                    if (x instanceof B) System.out.println(((B) x).only());
                }
            }
        """) == ["7"]

    def test_bad_cast_throws(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class A { }
                class B extends A { }
                class Demo {
                    static void main() {
                        A x = new A();
                        B y = (B) x;
                    }
                }
            """)
        assert "ClassCastException" in str(exc.value)

    def test_null_receiver_throws(self):
        with pytest.raises(JavaThrow) as exc:
            run('String s = null; s.length();')
        assert "NullPointerException" in str(exc.value)

    def test_interface_typed_variable(self):
        assert run("""
            Vector v = new Vector();
            v.addElement("x");
            Enumeration e = v.elements();
            System.out.println(e.hasMoreElements());
            System.out.println(e.nextElement());
            System.out.println(e.hasMoreElements());
        """) == ["true", "x", "false"]


class TestArrays:
    def test_default_values(self):
        assert run("""
            int[] xs = new int[2];
            boolean[] bs = new boolean[1];
            String[] ss = new String[1];
            System.out.println(xs[0]);
            System.out.println(bs[0]);
            System.out.println(ss[0]);
        """) == ["0", "false", "null"]

    def test_initializer(self):
        assert run("""
            int[] xs = { 1, 2, 3 };
            System.out.println(xs[0] + xs[1] + xs[2]);
        """) == ["6"]

    def test_2d_array(self):
        assert run("""
            int[][] grid = new int[2][3];
            grid[1][2] = 9;
            System.out.println(grid[1][2] + grid[0][0]);
            System.out.println(grid.length + " " + grid[0].length);
        """) == ["9", "2 3"]

    def test_bounds_check(self):
        with pytest.raises(JavaThrow) as exc:
            run("int[] xs = new int[2]; int y = xs[5];")
        assert "IndexOutOfBounds" in str(exc.value)

    def test_array_length(self):
        assert run("int[] xs = new int[7]; System.out.println(xs.length);") \
            == ["7"]


class TestExceptions:
    def test_throw_propagates(self):
        with pytest.raises(JavaThrow) as exc:
            run('throw new RuntimeException("boom");')
        assert "boom" in str(exc.value)

    def test_exception_message(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class Demo {
                    static void check(int x) {
                        if (x < 0) throw new IllegalArgumentException("neg");
                    }
                    static void main() { check(-1); }
                }
            """)
        assert exc.value.value.fields["message"] == "neg"


class TestBuiltins:
    def test_string_methods(self):
        assert run("""
            String s = "Hello";
            System.out.println(s.length());
            System.out.println(s.substring(1, 3));
            System.out.println(s.toUpperCase());
            System.out.println(s.charAt(1));
            System.out.println(s.indexOf("llo"));
        """) == ["5", "el", "HELLO", "e", "2"]

    def test_string_equals(self):
        assert run("""
            String a = "x" + 1;
            System.out.println(a.equals("x1"));
        """) == ["true"]

    def test_stringbuffer(self):
        assert run("""
            StringBuffer sb = new StringBuffer();
            sb.append("a").append(1).append(true);
            System.out.println(sb.toString());
        """) == ["a1true"]

    def test_hashtable(self):
        assert run("""
            Hashtable h = new Hashtable();
            h.put("a", "1");
            System.out.println(h.get("a"));
            System.out.println(h.containsKey("b"));
            System.out.println(h.size());
            h.remove("a");
            System.out.println(h.size());
        """) == ["1", "false", "1", "0"]

    def test_integer_boxing(self):
        assert run("""
            Integer i = new Integer(41);
            System.out.println(i.intValue() + 1);
            System.out.println(Integer.parseInt("10") + 1);
            System.out.println(Integer.MAX_VALUE);
        """) == ["42", "11", "2147483647"]

    def test_math(self):
        assert run("""
            System.out.println(Math.abs(-3));
            System.out.println(Math.max(2, 5));
            System.out.println(Math.min(2, 5));
        """) == ["3", "5", "2"]

    def test_vector(self):
        assert run("""
            Vector v = new Vector();
            v.addElement("a");
            v.add("b");
            System.out.println(v.size());
            System.out.println(v.elementAt(1));
            System.out.println(v.contains("a"));
            System.out.println(v.isEmpty());
        """) == ["2", "b", "true", "false"]


class TestCounters:
    def test_allocation_counter(self):
        program = compile_source("""
            class Demo {
                static void main() {
                    for (int i = 0; i < 5; i++) {
                        java.util.Vector v = new java.util.Vector();
                    }
                }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.counters.allocations == 5

    def test_method_call_counter(self):
        program = compile_source("""
            class Demo {
                static int f() { return 1; }
                static void main() { f(); f(); f(); }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        # main + 3 calls to f
        assert interp.counters.method_calls == 4
