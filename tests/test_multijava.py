"""MultiJava (paper section 5, experiment E9)."""

import pytest

from repro.interp import Interpreter
from repro.multijava import MultiJavaError
from tests.conftest import compile_source, run_main


class TestPaperExample:
    """The exact translation shown in section 5.2."""

    SOURCE = """
        use multijava.MultiJava;
        class C { }
        class D extends C {
            int m(C c) { return 0; }
            int m(C@D c) { return 1; }
        }
        class Demo {
            static void main() {
                D d = new D();
                System.out.println(d.m(new C()));
                System.out.println(d.m(new D()));
            }
        }
    """

    def test_translation_shape(self):
        program = compile_source(self.SOURCE, multijava=True)
        source = program.source()
        assert "private int m$impl1(C c)" in source
        assert "private int m$impl2(D c)" in source
        assert "instanceof D" in source
        # The public dispatcher keeps the base signature.
        assert "public int m(C " in source

    def test_runtime_dispatch(self):
        assert run_main(self.SOURCE, multijava=True) == ["0", "1"]

    def test_static_type_does_not_matter(self):
        """Dispatch is on the runtime class (unlike overloading)."""
        lines = run_main("""
            use multijava.MultiJava;
            class C { }
            class D extends C { }
            class Host {
                String which(C c) { return "C"; }
                String which(C@D c) { return "D"; }
            }
            class Demo {
                static void main() {
                    Host h = new Host();
                    C statically_c = new D();
                    System.out.println(h.which(statically_c));
                }
            }
        """, multijava=True)
        assert lines == ["D"]


class TestMultipleArguments:
    def test_double_dispatch(self):
        """The visitor-pattern killer: dispatch on two arguments."""
        lines = run_main("""
            use multijava.MultiJava;
            class Shape { }
            class Circle extends Shape { }
            class Rect extends Shape { }
            class Intersect {
                String test(Shape a, Shape b) { return "generic"; }
                String test(Shape@Circle a, Shape@Circle b) { return "c/c"; }
                String test(Shape@Circle a, Shape@Rect b) { return "c/r"; }
                String test(Shape@Rect a, Shape@Circle b) { return "r/c"; }
            }
            class Demo {
                static void main() {
                    Intersect i = new Intersect();
                    Shape c = new Circle();
                    Shape r = new Rect();
                    System.out.println(i.test(c, c));
                    System.out.println(i.test(c, r));
                    System.out.println(i.test(r, c));
                    System.out.println(i.test(r, r));
                }
            }
        """, multijava=True)
        assert lines == ["c/c", "c/r", "r/c", "generic"]

    def test_deep_hierarchy_ordering(self):
        """Subclass tests must come before superclass tests."""
        lines = run_main("""
            use multijava.MultiJava;
            class A { }
            class B extends A { }
            class Cc extends B { }
            class Host {
                String f(A x) { return "A"; }
                String f(A@B x) { return "B"; }
                String f(A@Cc x) { return "Cc"; }
            }
            class Demo {
                static void main() {
                    Host h = new Host();
                    System.out.println(h.f(new A()));
                    System.out.println(h.f(new B()));
                    System.out.println(h.f(new Cc()));
                }
            }
        """, multijava=True)
        assert lines == ["A", "B", "Cc"]


class TestSuperSends:
    def test_super_selects_next_applicable(self):
        """Paper 5.1: super in a multimethod calls the next applicable
        method of the same generic function."""
        lines = run_main("""
            use multijava.MultiJava;
            class C { }
            class D extends C { }
            class Host {
                String m(C c) { return "base"; }
                String m(C@D c) { return "special+" + super.m(c); }
            }
            class Demo {
                static void main() {
                    Host h = new Host();
                    System.out.println(h.m(new D()));
                }
            }
        """, multijava=True)
        assert lines == ["special+base"]


class TestOpenClasses:
    def test_external_methods(self):
        lines = run_main("""
            use multijava.MultiJava;
            class Shape { }
            class Circle extends Shape { int r; Circle(int r) { this.r = r; } }

            int Shape.area() { return 0; }
            int Circle.area() { return 3 * this.r * this.r; }

            class Demo {
                static void main() {
                    Shape s = new Circle(2);
                    System.out.println(s.area());
                    System.out.println(new Shape().area());
                }
            }
        """, multijava=True)
        assert lines == ["12", "0"]

    def test_external_method_on_builtin_class(self):
        """Open classes can extend classes from earlier compilations
        (here: a built-in library class)."""
        lines = run_main("""
            use multijava.MultiJava;
            int java.util.Vector.doubledSize() { return this.size() * 2; }
            class Demo {
                static void main() {
                    java.util.Vector v = new java.util.Vector();
                    v.addElement("x");
                    System.out.println(v.doubledSize());
                }
            }
        """, multijava=True)
        assert lines == ["2"]

    def test_external_multimethods(self):
        lines = run_main("""
            use multijava.MultiJava;
            class Node { }
            class Leaf extends Node { }

            String Node.show(Node other) { return "n/n"; }
            String Node.show(Node@Leaf other) { return "n/l"; }

            class Demo {
                static void main() {
                    Node n = new Node();
                    System.out.println(n.show(new Node()));
                    System.out.println(n.show(new Leaf()));
                }
            }
        """, multijava=True)
        assert lines == ["n/n", "n/l"]

    def test_this_bound_in_external_method(self):
        lines = run_main("""
            use multijava.MultiJava;
            class Box { int v; Box(int v) { this.v = v; } }
            int Box.twice() { return this.v * 2; }
            class Demo {
                static void main() {
                    System.out.println(new Box(21).twice());
                }
            }
        """, multijava=True)
        assert lines == ["42"]


class TestStaticChecks:
    def test_specializer_must_be_subclass(self):
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class Unrelated { }
                class Host {
                    int m(C c) { return 0; }
                    int m(C@Unrelated c) { return 1; }
                }
            """, multijava=True)

    def test_completeness_required(self):
        """A generic function must cover its declared argument types."""
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class D extends C { }
                class Host {
                    int m(C@D c) { return 1; }
                }
            """, multijava=True)

    def test_ambiguous_multimethods_rejected(self):
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class D extends C { }
                class Host {
                    int m(C a, C b) { return 0; }
                    int m(C@D a, C b) { return 1; }
                    int m(C a, C@D b) { return 2; }
                }
            """, multijava=True)

    def test_duplicate_multimethods_rejected(self):
        with pytest.raises(MultiJavaError):
            compile_source("""
                use multijava.MultiJava;
                class C { }
                class D extends C { }
                class Host {
                    int m(C@D c) { return 1; }
                    int m(C@D c) { return 2; }
                    int m(C c) { return 0; }
                }
            """, multijava=True)

    def test_primitive_specializer_rejected(self):
        with pytest.raises(Exception):
            compile_source("""
                use multijava.MultiJava;
                class Host {
                    int m(int x) { return 0; }
                    int m(int@long x) { return 1; }
                }
            """, multijava=True)


class TestLexicalScoping:
    def test_multijava_syntax_needs_use(self):
        """Without the import, @ in formals is a syntax error."""
        with pytest.raises(Exception):
            compile_source("""
                class C { }
                class D extends C {
                    int m(C@D c) { return 1; }
                }
            """, multijava=True)

    def test_plain_methods_untouched(self):
        """Classes without specializers compile exactly as before."""
        program = compile_source("""
            use multijava.MultiJava;
            class Plain {
                int f(int x) { return x + 1; }
            }
        """, multijava=True)
        assert "$impl" not in program.source()
