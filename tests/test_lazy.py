"""Lazy parsing and lazy type checking (experiment E12): the paper's
implementation technique 1."""

import pytest

from repro.ast import nodes as n
from repro.dispatch import Mayan
from repro.lexer import stream_lex
from tests.conftest import compile_source, make_compiler, run_main


class TestLazyParsing:
    def test_bodies_not_parsed_until_needed(self):
        """The stream lexer's trees let the compiler skip method bodies;
        a body is only parsed when the class compiler forces it."""
        from repro.core import CompileContext, CompileEnv
        from repro.lalr import Parser

        ctx = CompileContext(CompileEnv())
        parser = Parser(ctx.env.tables(), ctx)
        decl, _ = parser.parse(
            "MemberDecl",
            stream_lex("void f() { completely ~~ invalid @@ syntax }"),
        )
        # Parsing the declaration succeeded: the body is a thunk.
        assert isinstance(decl.body, n.LazyNode)

    def test_use_extends_grammar_for_later_statements(self):
        """Syntax following an import parses with the extended grammar;
        the same syntax before the import is an error."""
        good = """
            import java.util.*;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    use maya.util.ForEach;
                    v.elements().foreach(String s) { }
                }
            }
        """
        compile_source(good, macros=True)
        bad = """
            import java.util.*;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    v.elements().foreach(String s) { }
                    use maya.util.ForEach;
                }
            }
        """
        with pytest.raises(Exception):
            compile_source(bad, macros=True)

    def test_use_scoped_to_method(self):
        """Imports are lexically scoped: a sibling method does not see
        the extension."""
        with pytest.raises(Exception):
            compile_source("""
                import java.util.*;
                class Demo {
                    static void a() {
                        use maya.util.ForEach;
                        Vector v = new Vector();
                        v.elements().foreach(String s) { }
                    }
                    static void b() {
                        Vector v = new Vector();
                        v.elements().foreach(String s) { }
                    }
                }
            """, macros=True)

    def test_class_level_use(self):
        """A use directive in a class body scopes over later members."""
        lines = run_main("""
            import java.util.*;
            class Demo {
                use maya.util.ForEach;
                static void go(Vector v) {
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
                static void main() {
                    Vector v = new Vector();
                    v.addElement("hi");
                    go(v);
                }
            }
        """, macros=True)
        assert lines == ["hi"]

    def test_top_level_use(self):
        lines = run_main("""
            import java.util.*;
            use maya.util.ForEach;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("top");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """, macros=True)
        assert lines == ["top"]


class TestLazyTypeChecking:
    def test_binding_created_by_mayan_visible_in_lazy_body(self):
        """The central challenge of section 3: the foreach loop variable
        is created by the expansion, yet the body (lazily parsed) sees
        it — and sees it *typed*."""
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("word");
                    v.elements().foreach(String s) {
                        System.out.println(s.length());
                    }
                }
            }
        """, macros=True)
        assert lines == ["4"]

    def test_dispatch_types_computed_during_parsing(self):
        """A Mayan's static-type specializer forces typing of an
        expression while the enclosing statement is still being
        parsed."""
        observed = []

        class Spy(Mayan):
            result = "Statement"
            pattern = "QName:java.util.Vector v \\. spy ( ) \\;"

            def expand(self, ctx, v):
                from repro.typecheck import static_type_of

                observed.append(str(static_type_of(v)))
                return n.EmptyStmt()

        compiler = make_compiler()
        spy = Spy()

        class Provider:
            use_name = "Spy"

            def run(self, env):
                spy.run(env)

        compiler.provide("Spy", Provider())
        compiler.compile("""
            import java.util.*;
            class Demo {
                static void main() {
                    use Spy;
                    Vector v = new Vector();
                    v.spy();
                }
            }
        """)
        assert observed == ["java.util.Vector"]

    def test_later_statements_see_earlier_bindings(self):
        """Statement-at-a-time parsing threads the scope forward."""
        lines = run_main("""
            class Demo {
                static void main() {
                    int x = 40;
                    int y = x + 2;
                    System.out.println(y);
                }
            }
        """)
        assert lines == ["42"]

    def test_forward_class_references_resolve(self):
        """Lazy member compilation lets classes refer to later classes."""
        lines = run_main("""
            class Demo {
                static void main() {
                    System.out.println(new Later().value());
                }
            }
            class Later { int value() { return 9; } }
        """)
        assert lines == ["9"]


class TestFigureOneWorkflow:
    def test_extension_compiled_then_used(self):
        """Figure 1: compile an extension, provide it, compile an
        application against it — with one compiler instance."""
        from repro.ast.nodes import Literal
        from repro.patterns import Template

        class Unless(Mayan):
            result = "Statement"
            pattern = "unless (Expression cond) Statement body"
            TEMPLATE = Template("Statement", "if (!($c)) $b",
                                c="Expression", b="Statement")

            def run(self, env):
                env.add_production("Statement", "unless (Expression) Statement")
                super().run(env)

            def expand(self, ctx, cond, body):
                return ctx.instantiate(self.TEMPLATE, c=cond, b=body)

        compiler = make_compiler()
        compiler.provide("ext.Unless", Unless())
        program = compiler.compile("""
            class Demo {
                static void main() {
                    use ext.Unless;
                    unless (1 > 2) { System.out.println("ran"); }
                }
            }
        """)
        from repro.interp import Interpreter

        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.output == ["ran"]
