"""try/catch/finally in the Java subset."""

import pytest

from repro.interp import JavaThrow
from repro.lalr import ConflictError
from repro.typecheck import CheckError
from tests.conftest import compile_source, run_main


class TestGrammar:
    def test_grammar_still_conflict_free(self):
        from repro.javalang import base_grammar
        from repro.lalr import build_tables

        build_tables(base_grammar())  # raises on conflicts

    def test_try_requires_catch_or_finally(self):
        with pytest.raises(Exception):
            compile_source("""
                class A { void f() { try { g(); } } void g() { } }
            """)


class TestSemantics:
    def test_catch_matching_type(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        throw new RuntimeException("boom");
                    } catch (RuntimeException e) {
                        System.out.println("caught: " + e.getMessage());
                    }
                }
            }
        """) == ["caught: boom"]

    def test_catch_by_supertype(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        throw new IllegalArgumentException("specific");
                    } catch (Exception e) {
                        System.out.println("as exception");
                    }
                }
            }
        """) == ["as exception"]

    def test_first_matching_clause_wins(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        throw new NullPointerException();
                    } catch (NullPointerException e) {
                        System.out.println("npe");
                    } catch (Exception e) {
                        System.out.println("general");
                    }
                }
            }
        """) == ["npe"]

    def test_unmatched_exception_propagates(self):
        with pytest.raises(JavaThrow):
            run_main("""
                class Demo {
                    static void main() {
                        try {
                            throw new Error("not an Exception");
                        } catch (Exception e) {
                            System.out.println("nope");
                        }
                    }
                }
            """)

    def test_finally_runs_on_success(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        System.out.println("body");
                    } finally {
                        System.out.println("finally");
                    }
                }
            }
        """) == ["body", "finally"]

    def test_finally_runs_on_throw(self):
        from repro.interp import Interpreter

        program = compile_source("""
            class Demo {
                static void main() {
                    try {
                        throw new RuntimeException("x");
                    } finally {
                        System.out.println("cleanup");
                    }
                }
            }
        """)
        interp = Interpreter(program)
        with pytest.raises(JavaThrow):
            interp.run_static("Demo")
        assert interp.output == ["cleanup"]

    def test_finally_runs_after_catch(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        throw new RuntimeException("x");
                    } catch (RuntimeException e) {
                        System.out.println("handled");
                    } finally {
                        System.out.println("cleanup");
                    }
                }
            }
        """) == ["handled", "cleanup"]

    def test_builtin_exceptions_catchable(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        int x = 1 / 0;
                    } catch (ArithmeticException e) {
                        System.out.println("div: " + e.getMessage());
                    }
                    try {
                        int[] xs = new int[1];
                        int y = xs[9];
                    } catch (IndexOutOfBoundsException e) {
                        System.out.println("bounds");
                    }
                }
            }
        """) == ["div: / by zero", "bounds"]

    def test_nested_try(self):
        assert run_main("""
            class Demo {
                static void main() {
                    try {
                        try {
                            throw new Error("inner");
                        } catch (Exception e) {
                            System.out.println("wrong");
                        }
                    } catch (Error e) {
                        System.out.println("outer caught " + e.getMessage());
                    }
                }
            }
        """) == ["outer caught inner"]


class TestStaticChecks:
    def test_cannot_catch_non_throwable(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Demo {
                    static void main() {
                        try { ; } catch (String s) { }
                    }
                }
            """)

    def test_cannot_throw_non_throwable(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Demo {
                    static void main() { throw new Object(); }
                }
            """)

    def test_catch_variable_typed_in_body(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Demo {
                    static void main() {
                        try { ; } catch (Exception e) {
                            int x = e;
                        }
                    }
                }
            """)

    def test_unparse_roundtrip(self):
        program = compile_source("""
            class Demo {
                static void main() {
                    try { f(); } catch (Exception e) { ; } finally { ; }
                }
                static void f() { }
            }
        """)
        source = program.source()
        assert "try" in source and "catch (Exception e)" in source \
            and "finally" in source
        compile_source(source)  # recompiles
