"""Templates: static checking, substitution, laziness (paper 3.2/4.2)."""

import pytest

from repro.ast import nodes as n
from repro.ast import to_source
from repro.core import CompileContext, CompileEnv
from repro.hygiene import reset_fresh_names
from repro.lalr import Parser
from repro.lexer import stream_lex
from repro.patterns import PatternParseError, Template, TemplateError


@pytest.fixture
def ctx():
    return CompileContext(CompileEnv())


def parse_expr(ctx, source):
    parser = Parser(ctx.env.tables(), ctx)
    value, _ = parser.parse("Expression", stream_lex(source))
    return value


class TestCompilation:
    def test_valid_template_compiles(self, ctx):
        template = Template("Statement", "while ($cond) { $body }",
                            cond="Expression", body="BlockStmts")
        assert template.compiled(ctx.env) is not None

    def test_syntax_error_detected_at_compile_time(self, ctx):
        """Maya guarantees a template is syntactically correct by
        parsing its body when the template is compiled."""
        template = Template("Statement", "while while ($cond);",
                            cond="Expression")
        with pytest.raises(PatternParseError):
            template.compiled(ctx.env)

    def test_undeclared_hole_rejected(self, ctx):
        template = Template("Statement", "f($mystery);")
        with pytest.raises(Exception):
            template.compiled(ctx.env)

    def test_compiled_once_per_grammar(self, ctx):
        template = Template("Expression", "1 + $x", x="Expression")
        assert template.compiled(ctx.env) is template.compiled(ctx.env)

    def test_template_builds_concrete_tree(self, ctx):
        template = Template("Expression", "2 * 3")
        expr = template.instantiate(ctx)
        assert isinstance(expr, n.BinaryExpr) and expr.op == "*"


class TestSubstitution:
    def test_expression_hole(self, ctx):
        template = Template("Expression", "1 + $x", x="Expression")
        value = parse_expr(ctx, "2 * 3")
        expr = template.instantiate(ctx, x=value)
        assert to_source(expr) == "1 + 2 * 3"
        # The substituted node is spliced, not reparsed: precedence is
        # preserved structurally.
        assert isinstance(expr.right, n.BinaryExpr) and expr.right.op == "*"

    def test_precedence_immunity(self, ctx):
        """Unlike token-based macro systems, substituting a low-
        precedence expression under a high-precedence operator cannot
        reassociate it."""
        template = Template("Expression", "$a * $b",
                            a="Expression", b="Expression")
        value = parse_expr(ctx, "1 + 2")
        expr = template.instantiate(ctx, a=value, b=value)
        assert expr.op == "*"
        assert expr.left.op == "+" and expr.right.op == "+"

    def test_statement_hole(self, ctx):
        template = Template("Statement", "while (true) $body",
                            body="Statement")
        stmt = template.instantiate(
            ctx, body=n.ExprStmt(n.Literal("int", 1)))
        assert isinstance(stmt, n.WhileStmt)

    def test_type_hole(self, ctx):
        template = Template("Expression", "($t) $x", t="TypeName",
                            x="Expression")
        # Unused holes beyond declared are fine to pass explicitly.
        expr = template.instantiate(
            ctx,
            t=n.TypeName(("java", "lang", "String"), 0),
            x=parse_expr(ctx, "y"),
        )
        assert isinstance(expr, n.CastExpr)

    def test_identifier_hole_breaks_hygiene(self, ctx):
        template = Template("Statement", "int $name = 1;",
                            name="Identifier")
        stmt = template.instantiate(ctx, name=n.Ident("counter"))
        assert stmt.declarators[0].name.name == "counter"

    def test_missing_binding_rejected(self, ctx):
        template = Template("Expression", "1 + $x", x="Expression")
        with pytest.raises(TemplateError):
            template.instantiate(ctx)

    def test_wrong_value_type_rejected(self, ctx):
        template = Template("Statement", "while (true) $body",
                            body="Statement")
        with pytest.raises(TemplateError):
            template.instantiate(ctx, body=parse_expr(ctx, "1"))

    def test_block_splice(self, ctx):
        template = Template("Statement", "{ f(); $rest }",
                            rest="BlockStmts")
        rest = n.BlockStmts([n.ExprStmt(n.Literal("int", 1)),
                             n.ExprStmt(n.Literal("int", 2))])
        stmt = template.instantiate(ctx, rest=rest)
        assert len(stmt.body.stmts) == 3


class TestHygieneRenaming:
    def test_binders_renamed(self, ctx):
        reset_fresh_names()
        template = Template("Statement", "{ int tmp = $x; f(tmp); }",
                            x="Expression")
        stmt = template.instantiate(ctx, x=parse_expr(ctx, "1"))
        decl = stmt.body.stmts[0]
        name = decl.declarators[0].name.name
        assert name.startswith("tmp$")
        call = stmt.body.stmts[1]
        assert call.expr.args[0].parts == (name,)

    def test_each_instantiation_fresh(self, ctx):
        template = Template("Statement", "{ int tmp = 0; }")
        first = template.instantiate(ctx)
        second = template.instantiate(ctx)
        name1 = first.body.stmts[0].declarators[0].name.name
        name2 = second.body.stmts[0].declarators[0].name.name
        assert name1 != name2


class TestLazySubTemplates:
    def test_lazy_block_is_thunk(self, ctx):
        """Sub-templates in lazy positions become thunks expanded when
        the corresponding syntax would be parsed."""
        env = ctx.env
        from repro.macros.foreach import ForEach

        ForEach().run(env)
        template = Template("Statement",
                            "$e.foreach($v) { $inner }",
                            e="Expression", v="Formal",
                            inner="BlockStmts")
        assert template.compiled(env) is not None


class TestDispatchDuringReplay:
    def test_template_output_subject_to_mayans(self, ctx):
        """Templates perform the same reductions the parser would, so
        generated syntax is expanded by imported Mayans (the Collect
        macro relies on this)."""
        from repro.macros.foreach import ForEach

        child = ctx.env.child()
        ForEach().run(child)
        child_ctx = ctx.with_env(child)
        scope = child_ctx.scope
        enum_type = child.registry.resolve_type(
            ("java", "util", "Enumeration"))
        scope.define("src", enum_type)
        template = Template(
            "Statement",
            "$e.foreach(String s) { f(s); }",
            e="Expression",
        )
        stmt = template.instantiate(child_ctx, e=parse_expr(child_ctx, "src"))
        # The foreach Mayan ran during instantiation: we get a ForStmt.
        assert isinstance(stmt, n.ForStmt)
