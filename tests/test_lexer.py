"""Unit tests for the scanner and stream lexer."""

import pytest

from repro.lexer import LexError, Token, scan, stream_lex
from repro.lexer.tokens import flatten


class TestScanner:
    def test_identifiers_and_keywords(self):
        tokens = scan("class Foo if whileLoop")
        assert [t.kind for t in tokens] == ["class", "Identifier", "if",
                                            "Identifier"]
        assert tokens[3].text == "whileLoop"

    def test_foreach_is_not_reserved(self):
        tokens = scan("foreach")
        assert tokens[0].kind == "Identifier"

    def test_int_literal(self):
        token = scan("42")[0]
        assert token.kind == "IntLit" and token.value == 42

    def test_hex_literal(self):
        token = scan("0xFF")[0]
        assert token.value == 255

    def test_long_literal(self):
        token = scan("42L")[0]
        assert token.kind == "LongLit" and token.value == 42

    def test_double_literal(self):
        token = scan("3.25")[0]
        assert token.kind == "DoubleLit" and token.value == 3.25

    def test_exponent_literal(self):
        token = scan("1e3")[0]
        assert token.kind == "DoubleLit" and token.value == 1000.0

    def test_string_literal_with_escapes(self):
        token = scan(r'"a\nb\"c"')[0]
        assert token.kind == "StringLit" and token.value == 'a\nb"c'

    def test_char_literal(self):
        token = scan("'x'")[0]
        assert token.kind == "CharLit" and token.value == "x"

    def test_char_literal_must_be_single(self):
        with pytest.raises(LexError):
            scan("'xy'")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            scan('"abc')

    def test_operators_longest_match(self):
        tokens = scan("a >>>= b >>> c >> d > e")
        kinds = [t.kind for t in tokens if t.kind != "Identifier"]
        assert kinds == [">>>=", ">>>", ">>", ">"]

    def test_line_comment(self):
        tokens = scan("a // comment\n b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_block_comment(self):
        tokens = scan("a /* x\ny */ b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            scan("/* never ends")

    def test_locations(self):
        tokens = scan("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_dollar_identifiers(self):
        token = scan("enumVar$1")[0]
        assert token.kind == "Identifier" and token.text == "enumVar$1"

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            scan("a ` b")


class TestStreamLexer:
    def test_builds_subtrees(self):
        tree = stream_lex("f(a) { b; } [c]")
        assert [t.kind for t in tree] == [
            "Identifier", "ParenTree", "BraceTree", "BracketTree"
        ]

    def test_nested_subtrees(self):
        tree = stream_lex("{ ( [ x ] ) }")
        brace = tree[0]
        paren = brace.children[0]
        bracket = paren.children[0]
        assert bracket.children[0].text == "x"

    def test_empty_brackets_are_dims(self):
        tree = stream_lex("int[] x")
        assert tree[1].kind == "Dims"

    def test_empty_parens(self):
        tree = stream_lex("f()")
        assert tree[1].kind == "EmptyParen"

    def test_primitive_cast_classified(self):
        tree = stream_lex("(int) x")
        assert tree[0].kind == "CastParen"

    def test_primitive_array_cast_classified(self):
        tree = stream_lex("(double[][]) x")
        assert tree[0].kind == "CastParen"

    def test_name_array_cast_classified(self):
        tree = stream_lex("(java.lang.Object[]) x")
        assert tree[0].kind == "CastParen"

    def test_plain_name_parens_not_cast(self):
        # (Foo) stays a ParenTree: only context distinguishes a cast
        # from a parenthesized expression.
        tree = stream_lex("(Foo) x")
        assert tree[0].kind == "ParenTree"

    def test_expression_parens_not_cast(self):
        tree = stream_lex("(a + b)")
        assert tree[0].kind == "ParenTree"

    def test_unmatched_open(self):
        with pytest.raises(LexError):
            stream_lex("( a")

    def test_unmatched_close(self):
        with pytest.raises(LexError):
            stream_lex("a )")

    def test_mismatched_delimiters(self):
        with pytest.raises(LexError):
            stream_lex("( a ]")

    def test_flatten_roundtrip(self):
        source = "f(a, b) { int[] x; x[0] = (int) 3.5; }"
        tree = stream_lex(source)
        flat = [t.text for t in flatten(tree)]
        assert flat == [t.text for t in scan(source)]

    def test_source_text(self):
        tree = stream_lex("{ a; }")
        assert tree[0].source_text() == "{a ;}"


class TestTokenEquality:
    def test_equal_tokens(self):
        assert scan("foo")[0] == scan("foo")[0]

    def test_unequal_tokens(self):
        assert scan("foo")[0] != scan("bar")[0]

    def test_tree_token_delimiters(self):
        tree = stream_lex("(x)")[0]
        assert tree.delimiters() == ("(", ")")
