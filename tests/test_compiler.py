"""The mayac pipeline: phases, units, and the public API."""

import pytest

from repro import MayaCompiler, MayaError, run_program
from repro.ast import nodes as n
from repro.interp import Interpreter
from tests.conftest import compile_source, make_compiler


class TestPhases:
    def test_shaper_declares_members(self):
        program = compile_source("""
            class Point {
                int x;
                int getX() { return x; }
                Point(int x) { this.x = x; }
            }
        """)
        point = program.class_named("Point").type
        assert point.find_field("x") is not None
        assert point.find_method("getX", []) is not None
        assert point.find_constructor(
            [program.env.registry.resolve_type(("int",))]
        ) is not None

    def test_superclass_resolved(self):
        program = compile_source("""
            class Base { }
            class Sub extends Base { }
        """)
        sub = program.class_named("Sub").type
        assert sub.superclass.simple_name == "Base"

    def test_default_superclass_is_object(self):
        program = compile_source("class Solo { }")
        solo = program.class_named("Solo").type
        assert solo.superclass.name == "java.lang.Object"

    def test_interface_members_abstract(self):
        program = compile_source("interface I { int f(); }")
        klass = program.class_named("I").type
        assert klass.find_method("f", []).is_abstract

    def test_package_qualifies_names(self):
        program = compile_source("""
            package com.example;
            class Thing { }
        """)
        assert "com.example.Thing" in program.classes

    def test_constructor_name_must_match(self):
        with pytest.raises(MayaError):
            compile_source("class A { Wrong() { } }")

    def test_class_hooks_run(self):
        seen = []
        compiler = make_compiler()
        compiler.env.class_hooks.append(
            lambda item, env: seen.append(item.type.simple_name))
        compiler.compile("class Hooked { }")
        assert seen == ["Hooked"]


class TestMultipleUnits:
    def test_classes_accumulate_across_compiles(self):
        compiler = make_compiler()
        compiler.compile("class Lib { static int f() { return 7; } }")
        program = compiler.compile("""
            class App {
                static void main() { System.out.println(Lib.f()); }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("App")
        assert interp.output == ["7"]

    def test_separate_compilation_of_extension_and_app(self):
        """Figure 1's two-stage workflow across compile() calls."""
        from repro.dispatch import Mayan
        from repro.patterns import Template

        class Twice(Mayan):
            result = "Statement"
            pattern = "twice Statement body"
            TEMPLATE = Template("Statement", "{ $b $b }", b="Statement")

            def run(self, env):
                env.add_production("Statement", "twice Statement")
                super().run(env)

            def expand(self, ctx, body):
                return ctx.instantiate(self.TEMPLATE, b=body)

        compiler = make_compiler()
        compiler.provide("ext.Twice", Twice())
        program = compiler.compile("""
            class Demo {
                static void main() {
                    use ext.Twice;
                    twice System.out.println("hi");
                }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.output == ["hi", "hi"]

    def test_compiler_wide_use_option(self):
        """The -use command line option equivalent."""
        from repro.macros import install_macro_library

        compiler = make_compiler()
        install_macro_library(compiler)
        compiler.use("maya.util.ForEach")
        program = compiler.compile("""
            import java.util.*;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("no use directive needed");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.output == ["no use directive needed"]


class TestPublicAPI:
    def test_run_program_helper(self):
        program = compile_source("""
            class Demo { static int answer() { return 42; } }
        """)
        assert run_program(program, "Demo", "answer") == 42

    def test_compile_expression(self):
        compiler = make_compiler()
        expr = compiler.compile_expression("1 + 2 * 3")
        assert isinstance(expr, n.BinaryExpr)

    def test_unknown_class_lookup(self):
        program = compile_source("class A { }")
        with pytest.raises(MayaError):
            program.class_named("Nope")

    def test_unknown_metaprogram(self):
        with pytest.raises(MayaError):
            compile_source("""
                class Demo { static void main() { use no.Such; } }
            """)

    def test_program_source_roundtrip_compiles(self):
        """Unparsed expanded output is itself valid input."""
        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("x");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """, macros=True)
        expanded = program.source()
        # The expansion is plain Java: recompile WITHOUT macros.
        reprogram = compile_source(expanded.replace("/* use maya.util.ForEach */", ""))
        interp = Interpreter(reprogram)
        interp.run_static("Demo")
        assert interp.output == ["x"]

    def test_interpreter_call_api(self):
        program = compile_source("""
            class Acc {
                int total;
                void add(int x) { total += x; }
                int get() { return total; }
            }
        """)
        interp = Interpreter(program)
        acc = interp.new_instance("Acc")
        interp.call(acc, "add", [5])
        interp.call(acc, "add", [7])
        assert interp.call(acc, "get") == 12
