"""Smoke tests: every shipped example must keep working.

``examples/hello.maya`` is driven through the real ``mayac`` CLI (the
path a new user follows first), including the observability flags; the
Python example scripts are imported and their ``main()`` run in-process
so a broken public API surfaces here, not in the README.
"""

import importlib
import json
import pathlib
import sys

import pytest

from repro import trace
from repro.mayac import main as mayac_main

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
HELLO = str(EXAMPLES_DIR / "hello.maya")


# ---------------------------------------------------------------------------
# hello.maya through the CLI
# ---------------------------------------------------------------------------


class TestHelloMaya:
    def test_compiles(self, capsys):
        assert mayac_main([HELLO]) == 0

    def test_runs(self, capsys):
        assert mayac_main([HELLO, "--run", "Hello"]) == 0
        out = capsys.readouterr().out
        assert "hello, maya" in out
        assert "multimethods on productions" in out

    def test_expand_shows_plain_java(self, capsys):
        assert mayac_main([HELLO, "--expand"]) == 0
        out = capsys.readouterr().out
        assert "foreach" not in out
        assert "hasMoreElements" in out

    def test_trace_out_emits_valid_jsonl(self, tmp_path, capsys):
        out = tmp_path / "hello-trace.jsonl"
        assert mayac_main([HELLO, "--trace-out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["type"] == "trace"
        assert any(r.get("kind") == "expand" for r in records)
        assert trace.active is None

    def test_profile_reports_expansion(self, capsys):
        assert mayac_main([HELLO, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "expansions" in err


# ---------------------------------------------------------------------------
# examples/modules through mayac module mode
# ---------------------------------------------------------------------------

MODULES_DIR = EXAMPLES_DIR / "modules"
MODULES_MAIN = str(MODULES_DIR / "app" / "Main.maya")
MODULES_OUTPUT = ["maya", "modules", "incremental",
                  "MAYA!", "MODULES!", "INCREMENTAL!"]


class TestModulesExample:
    """The shipped multi-module example: a Mayan exported over an
    import edge, built incrementally.  Runs under whichever backend
    ``MAYA_BACKEND`` selects, so every CI backend leg covers it."""

    def _argv(self, cache):
        return ["--module-path", str(MODULES_DIR), "--module-cache",
                str(cache), "--module-report", "--run", "Main",
                MODULES_MAIN]

    def test_cold_build_runs(self, tmp_path, capsys):
        assert mayac_main(self._argv(tmp_path / "cache")) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == MODULES_OUTPUT
        assert "3 total, 3 recompiled, 0 reused" in captured.err

    def test_incremental_rebuild_reuses_everything(self, tmp_path,
                                                   capsys):
        cache = tmp_path / "cache"
        assert mayac_main(self._argv(cache)) == 0
        capsys.readouterr()
        assert mayac_main(self._argv(cache)) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == MODULES_OUTPUT
        assert "3 total, 0 recompiled, 3 reused" in captured.err

    def test_expand_is_plain_java(self, capsys):
        assert mayac_main(["--module-path", str(MODULES_DIR),
                           "--expand", MODULES_MAIN]) == 0
        out = capsys.readouterr().out
        assert "// module lib.Text" in out
        assert "// module app.Main" in out
        assert "foreach" not in out  # fully expanded
        assert "hasMoreElements" not in out  # arrays walk by index


# ---------------------------------------------------------------------------
# Python example scripts
# ---------------------------------------------------------------------------

SCRIPTS = ["quickstart", "custom_macro", "typedef_demo",
           "vector_optimization", "multijava_shapes"]


def run_example(name: str):
    """Import examples/<name>.py and call its main()."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        module = importlib.reload(module)  # fresh run if cached
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("name", SCRIPTS)
def test_example_script_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"examples/{name}.py printed nothing"


def test_quickstart_output(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "Expanded source" in out and "Program output" in out
