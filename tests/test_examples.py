"""Smoke tests: every shipped example must keep working.

``examples/hello.maya`` is driven through the real ``mayac`` CLI (the
path a new user follows first), including the observability flags; the
Python example scripts are imported and their ``main()`` run in-process
so a broken public API surfaces here, not in the README.
"""

import importlib
import json
import pathlib
import sys

import pytest

from repro import trace
from repro.mayac import main as mayac_main

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
HELLO = str(EXAMPLES_DIR / "hello.maya")


# ---------------------------------------------------------------------------
# hello.maya through the CLI
# ---------------------------------------------------------------------------


class TestHelloMaya:
    def test_compiles(self, capsys):
        assert mayac_main([HELLO]) == 0

    def test_runs(self, capsys):
        assert mayac_main([HELLO, "--run", "Hello"]) == 0
        out = capsys.readouterr().out
        assert "hello, maya" in out
        assert "multimethods on productions" in out

    def test_expand_shows_plain_java(self, capsys):
        assert mayac_main([HELLO, "--expand"]) == 0
        out = capsys.readouterr().out
        assert "foreach" not in out
        assert "hasMoreElements" in out

    def test_trace_out_emits_valid_jsonl(self, tmp_path, capsys):
        out = tmp_path / "hello-trace.jsonl"
        assert mayac_main([HELLO, "--trace-out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["type"] == "trace"
        assert any(r.get("kind") == "expand" for r in records)
        assert trace.active is None

    def test_profile_reports_expansion(self, capsys):
        assert mayac_main([HELLO, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "expansions" in err


# ---------------------------------------------------------------------------
# Python example scripts
# ---------------------------------------------------------------------------

SCRIPTS = ["quickstart", "custom_macro", "typedef_demo",
           "vector_optimization", "multijava_shapes"]


def run_example(name: str):
    """Import examples/<name>.py and call its main()."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        module = importlib.reload(module)  # fresh run if cached
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("name", SCRIPTS)
def test_example_script_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"examples/{name}.py printed nothing"


def test_quickstart_output(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "Expanded source" in out and "Program output" in out
