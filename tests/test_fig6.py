"""Figure 6 of the paper: pattern parsing with nonterminal inputs, on
the paper's own toy grammar (experiment E6).

The grammar (figure 6a):

    A -> a | b | c
    D -> d
    F -> f
    S -> D e A | F A
"""

import pytest

from repro.grammar import Grammar, nonterminal
from repro.lalr import build_tables
from repro.lexer import scan
from repro.patterns.items import HoleItem, TokItem
from repro.patterns.pattern_parser import (
    PatternParseError,
    PatternParser,
    PTHole,
    PTNode,
)


def fig6_grammar():
    g = Grammar("fig6")
    A = nonterminal("Fig6A")
    D = nonterminal("Fig6D")
    F = nonterminal("Fig6F")
    S = nonterminal("Fig6S")
    ident = lambda ctx, v: tuple(v)
    for sym, rhs, tag in [
        (A, ["a"], "fig6_Aa"),
        (A, ["b"], "fig6_Ab"),
        (A, ["c"], "fig6_Ac"),
        (D, ["d"], "fig6_Dd"),
        (F, ["f"], "fig6_Ff"),
        (S, [D, "e", A], "fig6_SDeA"),
        (S, [F, A], "fig6_SFA"),
    ]:
        g.add_production(sym, rhs, tag=tag, action=ident, internal=True)
    g.declare_start(S, A, D, F)
    return g


def items(*specs):
    """Build pattern items: lowercase strings are tokens, symbols are
    nonterminal holes."""
    out = []
    for spec in specs:
        if isinstance(spec, str):
            out.append(TokItem(scan(spec)[0]))
        else:
            out.append(HoleItem(spec, name="hole"))
    return out


@pytest.fixture
def parser():
    return PatternParser(build_tables(fig6_grammar()), driver_nonterminals=())


class TestFigure6:
    def test_case_b_goto_followed(self, parser):
        """Figure 6(b): input 'd e . A' — the state after 'd e' has a
        goto for A, so A is shifted directly."""
        A = nonterminal("Fig6A")
        tree, _ = parser.parse("Fig6S", items("d", "e", A))
        assert isinstance(tree, PTNode)
        assert tree.production.tag == "fig6_SDeA"
        assert isinstance(tree.children[2], PTHole)

    def test_case_c_first_serves_as_lookahead(self, parser):
        """Figure 6(c): input 'f . A' — state 67 has no goto for A, but
        all actions on FIRST(A) = {a, b, c} reduce F -> f; the stack is
        reduced, then the goto on A is followed."""
        A = nonterminal("Fig6A")
        tree, _ = parser.parse("Fig6S", items("f", A))
        assert tree.production.tag == "fig6_SFA"
        # The F child was built by the forced reduction.
        assert isinstance(tree.children[0], PTNode)
        assert tree.children[0].production.tag == "fig6_Ff"
        assert isinstance(tree.children[1], PTHole)

    def test_invalid_nonterminal_placement(self, parser):
        """Neither case applies: a D cannot appear after 'f'."""
        D = nonterminal("Fig6D")
        with pytest.raises(PatternParseError):
            parser.parse("Fig6S", items("f", D))

    def test_error_detected_after_reductions(self, parser):
        """The paper notes the error may surface only after the pattern
        parser has performed some reductions."""
        F = nonterminal("Fig6F")
        with pytest.raises(PatternParseError):
            parser.parse("Fig6S", items("f", F))

    def test_plain_terminal_parse(self, parser):
        tree, _ = parser.parse("Fig6S", items("d", "e", "a"))
        assert tree.production.tag == "fig6_SDeA"
        assert tree.children[2].production.tag == "fig6_Aa"

    def test_start_at_any_nonterminal(self, parser):
        tree, _ = parser.parse("Fig6A", items("b"))
        assert tree.production.tag == "fig6_Ab"

    def test_nonterminal_at_start_position(self, parser):
        D = nonterminal("Fig6D")
        A = nonterminal("Fig6A")
        tree, _ = parser.parse("Fig6S", items(D, "e", A))
        assert tree.production.tag == "fig6_SDeA"
        assert isinstance(tree.children[0], PTHole)
