"""Property test: incremental rebuilds are indistinguishable from clean.

For ≥50 seeded-random trials, generate a random module DAG, build it,
apply a random single-module edit, and prove two properties:

* **Byte-exactness** — the incremental rebuild's combined ``--expand``
  artifact is byte-identical to a from-scratch build of the edited
  sources (per-module artifacts included, since the combined output
  concatenates them all);
* **Minimal invalidation** — exactly the edited module and its
  transitive importers recompile; everything else replays from the
  cache.  Asserted both structurally (``BuildResult.recompiled``) and
  through the ``maya_modules_compiled_total`` /
  ``maya_modules_reused_total`` counters, so a builder that silently
  recompiled-and-discarded would still be caught.
* **Parallelism-invariance** — every trial also runs at ``jobs=4``
  (threaded DAG schedule) against its own cache, and the combined
  artifact, the recompiled set, the ``--module-report`` text, and the
  on-disk cache-entry bytes must all be identical to the serial
  build's.  A smaller loop repeats this through the fork-worker pool
  (the mayac ``--jobs`` substrate).
"""

import hashlib
import os
import random

from repro.modules import MemorySources, ModuleBuilder, ModuleGraph
from repro.modules.procpool import fork_available
from repro.obs.metrics import REGISTRY

TRIALS = 50
FORK_TRIALS = 6
SEED = 0x4D617961  # "Maya"


def _counter(name):
    return REGISTRY.get(name).value


def random_project(rng):
    """A random DAG of 4-9 tiny modules.

    Module ``mod.M<i>`` may import only lower-numbered modules, so the
    graph is acyclic by construction; each module's ``value()`` sums
    its deps' values plus its own marker, so every edge is a real
    compile-time dependency (the importer resolves the dep's class).
    """
    count = rng.randint(4, 9)
    deps = {}
    sources = {}
    for i in range(count):
        pool = list(range(i))
        rng.shuffle(pool)
        deps[i] = sorted(pool[:rng.randint(0, min(3, i))])
        imports = "".join(f"import mod.M{j};\n" for j in deps[i])
        terms = [f"M{j}.value()" for j in deps[i]] + [str(i + 1)]
        sources[f"mod.M{i}"] = (
            f"{imports}"
            f"class M{i} {{ static int value() "
            f"{{ return {' + '.join(terms)}; }} }}\n")
    imported = {j for targets in deps.values() for j in targets}
    roots = [f"mod.M{i}" for i in range(count) if i not in imported]
    return sources, roots


def edit_module(rng, sources):
    """Bump the edited module's marker constant — a real change to its
    expanded artifact, applied to a uniformly random module."""
    name = rng.choice(sorted(sources))
    index = int(name.rsplit("M", 1)[1])
    edited = dict(sources)
    edited[name] = edited[name].replace(f" {index + 1}; ",
                                        f" {index + 100}; ", 1)
    assert edited[name] != sources[name]
    return edited, name


def _cache_digests(directory):
    """Name -> sha256 of every entry file (quarantines excluded)."""
    out = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), "rb") as handle:
            out[name] = hashlib.sha256(handle.read()).hexdigest()
    return out


def test_incremental_rebuild_equals_clean_build(tmp_path):
    rng = random.Random(SEED)
    for trial in range(TRIALS):
        cache = tmp_path / f"trial{trial}"
        sources, roots = random_project(rng)

        first = ModuleBuilder(MemorySources(sources),
                              cache_dir=str(cache)).build(roots)
        assert first.recompiled == first.order  # cold cache

        edited, target = edit_module(rng, sources)
        downstream = first.graph.dependents_of(target)
        expected = sorted(downstream + [target])

        compiled_before = _counter("maya_modules_compiled_total")
        reused_before = _counter("maya_modules_reused_total")
        incremental = ModuleBuilder(MemorySources(edited),
                                    cache_dir=str(cache)).build(roots)

        # Minimal invalidation: the edited cone recompiles, nothing else.
        assert sorted(incremental.recompiled) == expected, \
            f"trial {trial}: edited {target}, deps {sources}"
        assert _counter("maya_modules_compiled_total") \
            - compiled_before == len(expected)
        assert _counter("maya_modules_reused_total") \
            - reused_before == len(incremental.order) - len(expected)

        # Byte-exactness: identical to a cacheless from-scratch build.
        clean = ModuleBuilder(MemorySources(edited)).build(roots)
        assert incremental.expanded() == clean.expanded(), \
            f"trial {trial}: incremental artifact diverged for {target}"

        # Parallelism-invariance: replay the whole trial at jobs=4 on
        # the threaded schedule; every observable — artifact bytes,
        # recompiled set, report text, cache-entry bytes — matches.
        cache4 = tmp_path / f"trial{trial}-jobs4"
        first4 = ModuleBuilder(MemorySources(sources),
                               cache_dir=str(cache4), jobs=4).build(roots)
        assert first4.expanded() == first.expanded(), \
            f"trial {trial}: jobs=4 clean artifact diverged"
        assert first4.report() == first.report()
        incremental4 = ModuleBuilder(MemorySources(edited),
                                     cache_dir=str(cache4),
                                     jobs=4).build(roots)
        assert incremental4.recompiled == incremental.recompiled, \
            f"trial {trial}: jobs=4 recompiled a different set"
        assert incremental4.expanded() == incremental.expanded()
        assert incremental4.report() == incremental.report()
        assert _cache_digests(str(cache4)) == _cache_digests(str(cache)), \
            f"trial {trial}: jobs=4 wrote different cache bytes"


def test_fork_builds_equal_serial_builds(tmp_path):
    """The same invariance through the fork-worker pool (mayac's
    ``--jobs`` substrate): artifacts, reports, and cache bytes match
    the serial build's, clean and after an edit."""
    if not fork_available():
        import pytest

        pytest.skip("no os.fork on this platform")
    rng = random.Random(SEED + 3)
    for trial in range(FORK_TRIALS):
        sources, roots = random_project(rng)
        edited, target = edit_module(rng, sources)
        serial_cache = tmp_path / f"fork{trial}-serial"
        fork_cache = tmp_path / f"fork{trial}-fork"

        serial = ModuleBuilder(MemorySources(sources),
                               cache_dir=str(serial_cache)).build(roots)
        forked = ModuleBuilder(MemorySources(sources),
                               cache_dir=str(fork_cache),
                               jobs=4, mode="fork").build(roots)
        assert forked.expanded() == serial.expanded()
        assert forked.report() == serial.report()

        serial_edit = ModuleBuilder(MemorySources(edited),
                                    cache_dir=str(serial_cache)
                                    ).build(roots)
        forked_edit = ModuleBuilder(MemorySources(edited),
                                    cache_dir=str(fork_cache),
                                    jobs=4, mode="fork").build(roots)
        assert forked_edit.recompiled == serial_edit.recompiled
        assert forked_edit.expanded() == serial_edit.expanded()
        assert forked_edit.report() == serial_edit.report()
        assert _cache_digests(str(fork_cache)) \
            == _cache_digests(str(serial_cache))


def test_discovery_order_is_deterministic():
    """The topological order is a pure function of the graph — the
    other half of byte-identical combined artifacts."""
    rng = random.Random(SEED + 1)
    for _ in range(10):
        sources, roots = random_project(rng)
        orders = {tuple(ModuleGraph.discover(
            roots, MemorySources(sources)).order()) for _ in range(3)}
        assert len(orders) == 1


def test_every_single_module_edit_point(tmp_path):
    """Exhaustively edit each module of one project: the recompiled
    set must equal {edited} ∪ dependents for every edit point."""
    rng = random.Random(SEED + 2)
    sources, roots = random_project(rng)
    graph = ModuleGraph.discover(roots, MemorySources(sources))
    for name in graph.order():
        cache = tmp_path / name
        ModuleBuilder(MemorySources(sources),
                      cache_dir=str(cache)).build(roots)
        index = int(name.rsplit("M", 1)[1])
        edited = dict(sources)
        edited[name] = edited[name].replace(f" {index + 1}; ",
                                            f" {index + 500}; ", 1)
        result = ModuleBuilder(MemorySources(edited),
                               cache_dir=str(cache)).build(roots)
        assert sorted(result.recompiled) == \
            sorted(graph.dependents_of(name) + [name])
