"""The reflection-style APIs Mayans use (paper 3.2): Type objects,
DeclStmt.make, Reference.makeExpr, StrictTypeName.make, intercession."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lexer import stream_lex
from repro.typecheck import Scope, static_type_of
from repro.types import INT, array_of


@pytest.fixture
def ctx():
    return CompileContext(CompileEnv())


def parse(ctx, start, source):
    parser = Parser(ctx.env.tables(), ctx)
    value, _ = parser.parse(start, stream_lex(source))
    return value


class TestFormalReflection:
    def test_get_type(self, ctx):
        formal = parse(ctx, "Formal", "java.util.Vector v")
        formal.scope = ctx.scope
        assert formal.get_type().name == "java.util.Vector"

    def test_get_type_with_dims(self, ctx):
        formal = parse(ctx, "Formal", "int[] xs")
        formal.scope = ctx.scope
        assert formal.get_type() is array_of(INT)

    def test_get_name_and_location(self, ctx):
        formal = parse(ctx, "Formal", "String st")
        assert formal.name.get_name() == "st"
        assert formal.get_location().line == 1


class TestDeclStmtMake:
    """Paper figure 2 line 12: DeclStmt.make(var) turns a formal into a
    statement-context declaration."""

    def test_make_from_formal(self, ctx):
        formal = parse(ctx, "Formal", "String st")
        decl = n.DeclStmt.make(formal)
        assert isinstance(decl, n.LocalVarDecl)
        assert decl.declarators[0].name.name == "st"
        assert decl.declarators[0].init is None

    def test_alias_identity(self):
        assert n.DeclStmt is n.LocalVarDecl


class TestReferenceMakeExpr:
    """Paper figure 2 line 13: a direct variable reference that name
    lookup (and shadowing) cannot affect."""

    def test_make_expr(self, ctx):
        formal = parse(ctx, "Formal", "String st")
        ref = n.Reference.make_expr(formal)
        assert isinstance(ref, n.Reference)
        # paper-style alias
        assert n.Reference.makeExpr(formal).binding is formal

    def test_reference_types_via_formal(self, ctx):
        formal = parse(ctx, "Formal", "int count")
        formal.scope = ctx.scope
        ref = n.Reference.make_expr(formal)
        ref.scope = ctx.scope
        assert static_type_of(ref) is INT


class TestStrictTypeName:
    def test_make_from_class(self, ctx):
        vector = ctx.env.registry.require("java.util.Vector")
        strict = n.StrictTypeName.make(vector)
        assert strict.type is vector
        assert str(strict) == "java.util.Vector"

    def test_make_from_array(self, ctx):
        strict = n.StrictTypeName.make(array_of(INT, 2))
        assert strict.dims == 2

    def test_resolves_without_imports(self, ctx):
        from repro.typecheck import resolve_type_name

        vector = ctx.env.registry.require("java.util.Vector")
        strict = n.StrictTypeName.make(vector)
        # No scope/imports needed: the type is embedded.
        assert resolve_type_name(strict, None) is vector


class TestIntercession:
    """The 'limited form of intercession that allows member
    declarations to be added to a class body'."""

    def test_add_method_visible_to_checker(self, ctx):
        from repro import run_program
        from tests.conftest import make_compiler

        compiler = make_compiler()
        program = compiler.compile("class Host { }")
        host = program.env.registry.require("Host")
        host.declare_method("added", [], INT,
                            impl=lambda interp, obj, args: 41)
        program = compiler.compile("""
            class Demo {
                static int go() { return new Host().added() + 1; }
            }
        """)
        assert run_program(program, "Demo", "go") == 42

    def test_remove_method(self, ctx):
        registry = ctx.env.registry
        klass = registry.declare("test.Removable")
        method = klass.declare_method("gone", [], INT)
        klass.remove_method(method)
        from repro.types import TypeError_

        with pytest.raises(TypeError_):
            klass.find_method("gone", [])


class TestGetStaticTypePaperStyle:
    def test_expression_get_static_type(self, ctx):
        ctx.scope.define("v", ctx.env.registry.require("java.util.Vector"))
        expr = parse(ctx, "Expression", "v.size()")
        # The paper's Expression.getStaticType() takes no arguments.
        assert expr.get_static_type() is INT


class TestClassSpecDispatch:
    """TypeName parameters with ':' specializers use ClassSpec
    (exact-class match on the denoted type)."""

    def test_class_spec_matching(self):
        from repro.dispatch import Mayan
        from tests.conftest import run_main

        class OnlyVectorDecl(Mayan):
            result = "Statement"
            pattern = ("TypeName:java.util.Vector t VarDeclarator d \\;")

            def expand(self, ctx, t, d):
                # Tag vector declarations by adding a println after.
                return ctx.next_rewrite()

        # Compiles and matches without error.
        from repro.core import CompileContext, CompileEnv
        from repro.lalr import Parser
        from repro.lexer import stream_lex

        env = CompileEnv()
        OnlyVectorDecl().run(env)
        context = CompileContext(env)
        parser = Parser(env.tables(), context)
        stmt, _ = parser.parse("Statement",
                               stream_lex("java.util.Vector v;"))
        assert isinstance(stmt, n.LocalVarDecl)
