"""Differential tests for the three execution backends.

The closure backend (slot frames + inline caches) and the pycode
backend (generated Python source with specialized call sites) must be
observably identical to the seed tree-walker: same stdout, same
operation-counter snapshots (step equivalence), and the same thrown
``JavaThrow`` classes.  Every shipped example runs under every backend,
plus targeted programs covering the ``_virtual_lookup`` shadowing
edges, inline cache transitions, and the pycode backend's
deoptimization paths (guard failures must be invisible apart from the
deopt counter).
"""

import json
import pathlib

import pytest

from repro.core import MayaError
from repro.interp import Interpreter, JavaThrow, StepLimitExceeded
from repro.interp import closures, pycodegen
from repro.mayac import main as mayac_main
from repro.obs.metrics import REGISTRY

from tests.conftest import compile_source
from tests.test_examples import EXAMPLES_DIR, HELLO, SCRIPTS, run_example

BACKENDS = ("walk", "closure", "pycode")


def run_all(source, cls="Demo", macros=False, multijava=False, args=()):
    """Run ``cls.main()`` under every backend; return per-backend
    (return value, output lines, counter snapshot)."""
    program = compile_source(source, macros, multijava)
    results = {}
    for backend in BACKENDS:
        interp = Interpreter(program, backend=backend)
        value = interp.run_static(cls, args=args)
        results[backend] = (value, interp.output,
                            interp.counters.snapshot())
    return results


def assert_equivalent(source, cls="Demo", macros=False, multijava=False):
    results = run_all(source, cls, macros, multijava)
    walk = results["walk"]
    for backend in BACKENDS[1:]:
        other = results[backend]
        assert walk[0] == other[0], f"return values differ ({backend})"
        assert walk[1] == other[1], f"stdout differs ({backend})"
        assert walk[2] == other[2], \
            f"operation counters differ ({backend})"
    return walk


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    SRC = "class Demo { static int main() { return 41 + 1; } }"

    def test_default_is_walk(self, monkeypatch):
        monkeypatch.delenv("MAYA_BACKEND", raising=False)
        program = compile_source(self.SRC)
        assert Interpreter(program).backend == "walk"

    def test_env_var_selects_backend(self, monkeypatch):
        for backend in ("closure", "pycode"):
            monkeypatch.setenv("MAYA_BACKEND", backend)
            program = compile_source(self.SRC)
            interp = Interpreter(program)
            assert interp.backend == backend
            assert interp.run_static("Demo") == 42

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("MAYA_BACKEND", "closure")
        program = compile_source(self.SRC)
        assert Interpreter(program, backend="walk").backend == "walk"

    def test_unknown_backend_rejected(self):
        program = compile_source(self.SRC)
        with pytest.raises(MayaError, match="unknown interpreter backend"):
            Interpreter(program, backend="jit")

    def test_mayac_backend_flag(self, tmp_path, capsys):
        src = tmp_path / "demo.maya"
        src.write_text("class Demo { static void main() "
                       "{ System.out.println(\"hi \" + (6 * 7)); } }")
        outputs = {}
        for backend in BACKENDS:
            assert mayac_main([str(src), "--run", "Demo",
                               "--backend", backend]) == 0
            outputs[backend] = capsys.readouterr().out
        for backend in BACKENDS[1:]:
            assert outputs["walk"] == outputs[backend]
        assert "hi 42" in outputs["pycode"]


# ---------------------------------------------------------------------------
# Differential: language constructs
# ---------------------------------------------------------------------------


class TestDifferentialPrograms:
    def test_arithmetic_and_loops(self):
        assert_equivalent("""
            class Demo {
                static int main() {
                    int total = 0;
                    for (int i = 0; i < 20; i++) {
                        if (i % 3 == 0) continue;
                        if (i > 15) break;
                        total += i * 2 - 1;
                    }
                    int j = 0;
                    do { total++; j++; } while (j < 3);
                    while (j > 0) { j--; }
                    return total;
                }
            }
        """)

    def test_truncating_division(self):
        walk = assert_equivalent("""
            class Demo {
                static void main() {
                    System.out.println(-7 / 2);
                    System.out.println(-7 % 2);
                    System.out.println(7 / -2);
                    System.out.println(7.5 / 2);
                }
            }
        """)
        assert walk[1] == ["-3", "-1", "-3", "3.75"]

    def test_string_concat_and_chars(self):
        assert_equivalent("""
            class Demo {
                static void main() {
                    char c = 'A';
                    int n = c + 1;
                    String s = "got " + c + " and " + n + " and " + true;
                    System.out.println(s);
                    System.out.println("x" + null);
                }
            }
        """)

    def test_fields_arrays_and_objects(self):
        assert_equivalent("""
            class Point {
                int x; int y;
                Point(int x, int y) { this.x = x; this.y = y; }
                int dist2() { return x * x + y * y; }
            }
            class Demo {
                static int main() {
                    Point[] pts = new Point[3];
                    int total = 0;
                    for (int i = 0; i < pts.length; i++) {
                        pts[i] = new Point(i, i + 1);
                    }
                    for (int i = 0; i < pts.length; i++) {
                        pts[i].x = pts[i].x + 1;
                        total += pts[i].dist2();
                    }
                    int[] init = {10, 20, 30};
                    return total + init[1] + init.length;
                }
            }
        """)

    def test_virtual_dispatch_and_super(self):
        assert_equivalent("""
            class Animal {
                String speak() { return "..."; }
                String describe() { return "I say " + this.speak(); }
            }
            class Dog extends Animal {
                String speak() { return "woof"; }
                String describe() { return super.describe() + "!"; }
            }
            class Demo {
                static void main() {
                    Animal a = new Dog();
                    System.out.println(a.describe());
                    Animal plain = new Animal();
                    System.out.println(plain.describe());
                }
            }
        """)

    def test_static_fields_and_methods(self):
        assert_equivalent("""
            class Counter {
                static int count;
                static int bump(int by) { count += by; return count; }
            }
            class Demo {
                static int main() {
                    Counter.bump(3);
                    Counter.bump(4);
                    Counter.count = Counter.count * 2;
                    return Counter.count + Integer.MAX_VALUE % 7;
                }
            }
        """)

    def test_instanceof_casts_and_conditional(self):
        assert_equivalent("""
            class Base { int tag() { return 1; } }
            class Sub extends Base { int tag() { return 2; } }
            class Demo {
                static int main() {
                    Object[] xs = new Object[4];
                    xs[0] = new Base(); xs[1] = new Sub();
                    xs[2] = new Sub(); xs[3] = new Base();
                    int total = 0;
                    for (int i = 0; i < xs.length; i++) {
                        Object x = xs[i];
                        total += (x instanceof Sub)
                            ? ((Sub) x).tag() * 10 : ((Base) x).tag();
                    }
                    double d = (double) total;
                    int back = (int) (d / 2.0);
                    char c = (char) 66;
                    return total + back + c;
                }
            }
        """)

    def test_try_catch_finally(self):
        walk = assert_equivalent("""
            class Demo {
                static int divide(int a, int b) {
                    try {
                        return a / b;
                    } catch (ArithmeticException e) {
                        System.out.println("caught: " + e.getMessage());
                        return -1;
                    } finally {
                        System.out.println("finally");
                    }
                }
                static int main() {
                    int a = Demo.divide(10, 2);
                    int b = Demo.divide(1, 0);
                    try {
                        throw new RuntimeException("boom");
                    } catch (RuntimeException e) {
                        System.out.println("rt: " + e.getMessage());
                    }
                    return a * 100 + b;
                }
            }
        """)
        assert walk[0] == 499
        assert "caught: / by zero" in walk[1]

    def test_finally_overrides_return(self):
        walk = assert_equivalent("""
            class Demo {
                static int f() {
                    try { return 1; } finally { return 2; }
                }
                static int g() {
                    try { throw new RuntimeException("x"); }
                    finally { return 3; }
                }
                static int main() { return Demo.f() * 10 + Demo.g(); }
            }
        """)
        assert walk[0] == 23

    def test_shadowing_in_sibling_blocks(self):
        # Both backends use one flat frame per invocation, so a name
        # redeclared in a sibling block reuses the same storage.
        assert_equivalent("""
            class Demo {
                static int main() {
                    int total = 0;
                    { int x = 5; total += x; }
                    { int x = 7; total += x; }
                    for (int i = 0; i < 2; i++) { int y = i; total += y; }
                    for (int i = 0; i < 2; i++) { int y = 10; total += y; }
                    return total;
                }
            }
        """)

    def test_compound_assignment_and_incr(self):
        assert_equivalent("""
            class Demo {
                static int main() {
                    int[] a = new int[5];
                    int i = 0;
                    a[i++] += 7;
                    a[++i] -= 2;
                    int x = 10;
                    x *= 3; x /= 2; x %= 7; x <<= 2; x >>= 1;
                    return a[0] * 100 + a[2] * 10 + x + i;
                }
            }
        """)

    def test_bitwise_and_logical(self):
        assert_equivalent("""
            class Demo {
                static int main() {
                    int bits = (12 & 10) | (1 ^ 3);
                    boolean p = true & false;
                    boolean q = true | false;
                    boolean r = true ^ true;
                    boolean s = (bits > 0) && !r || q;
                    return bits + (p ? 1 : 0) + (s ? 100 : 0);
                }
            }
        """)

    def test_recursion(self):
        walk = assert_equivalent("""
            class Demo {
                static int fib(int n) {
                    if (n < 2) return n;
                    return Demo.fib(n - 1) + Demo.fib(n - 2);
                }
                static int main() { return Demo.fib(15); }
            }
        """)
        assert walk[0] == 610


# ---------------------------------------------------------------------------
# Differential: exceptions escape identically
# ---------------------------------------------------------------------------


THROWING = [
    ("java.lang.NullPointerException", """
        class Demo {
            static void main() { Object o = null; o.toString(); }
        }
    """),
    ("java.lang.ArithmeticException", """
        class Demo {
            static int main() { int z = 0; return 5 / z; }
        }
    """),
    ("java.lang.IndexOutOfBoundsException", """
        class Demo {
            static int main() { int[] a = new int[2]; return a[5]; }
        }
    """),
    ("java.lang.ClassCastException", """
        class A { } class B extends A { }
        class Demo {
            static void main() { A a = new A(); B b = (B) a; }
        }
    """),
    ("java.lang.RuntimeException", """
        class Demo {
            static void main() { throw new RuntimeException("sad"); }
        }
    """),
]


class TestThrowParity:
    @pytest.mark.parametrize("expected,source",
                             THROWING, ids=[t[0] for t in THROWING])
    def test_same_java_throw_class(self, expected, source):
        program = compile_source(source)
        thrown = {}
        for backend in BACKENDS:
            interp = Interpreter(program, backend=backend)
            with pytest.raises(JavaThrow) as exc:
                interp.run_static("Demo")
            thrown[backend] = (exc.value.value.class_type.name,
                               exc.value.value.fields.get("message"))
        for backend in BACKENDS[1:]:
            assert thrown["walk"] == thrown[backend]
        assert thrown["walk"][0] == expected

    def test_step_limit_parity(self):
        source = """
            class Demo {
                static void main() { while (true) { int x = 1; } }
            }
        """
        program = compile_source(source)
        for backend in BACKENDS:
            interp = Interpreter(program, backend=backend,
                                 max_steps=500)
            with pytest.raises(StepLimitExceeded, match="step budget"):
                interp.run_static("Demo")

    def test_stack_overflow_parity(self):
        source = """
            class Demo {
                static int loop(int n) { return Demo.loop(n + 1); }
                static int main() { return Demo.loop(0); }
            }
        """
        program = compile_source(source)
        messages = {}
        for backend in BACKENDS:
            interp = Interpreter(program, backend=backend,
                                 max_call_depth=50)
            with pytest.raises(Exception) as exc:
                interp.run_static("Demo")
            messages[backend] = str(exc.value)
        for backend in BACKENDS[1:]:
            assert messages["walk"] == messages[backend]
        assert "Java stack overflow" in messages["walk"]


# ---------------------------------------------------------------------------
# Virtual-lookup shadowing edges the inline caches must preserve
# ---------------------------------------------------------------------------


class TestVirtualLookupShadowing:
    def test_stringbuffer_tostring_beats_object(self):
        # toString is declared on Object; the receiver's runtime chain
        # must win so StringBuffer.toString returns the buffer content,
        # not "Object@...".  Loop so the inline cache's hit path is
        # exercised, not just the miss.
        walk = assert_equivalent("""
            class Demo {
                static void main() {
                    StringBuffer sb = new StringBuffer();
                    sb.append("a").append("b");
                    for (int i = 0; i < 3; i++) {
                        Object o = sb;
                        System.out.println(o.toString());
                    }
                }
            }
        """)
        assert walk[1] == ["ab", "ab", "ab"]

    def test_user_override_beats_builtin(self):
        walk = assert_equivalent("""
            class Named {
                String toString() { return "named!"; }
            }
            class Demo {
                static void main() {
                    Object o = new Named();
                    for (int i = 0; i < 3; i++) {
                        System.out.println(o.toString());
                    }
                }
            }
        """)
        assert walk[1][0] == "named!"

    def test_string_receiver_resolves_string_methods(self):
        walk = assert_equivalent("""
            class Demo {
                static void main() {
                    String s = "Hello";
                    for (int i = 0; i < 3; i++) {
                        System.out.println(s.toUpperCase() + s.length());
                    }
                }
            }
        """)
        assert walk[1][0] == "HELLO5"

    def test_mixed_receivers_at_one_site(self):
        # One call site sees builtin peers (StringBuffer), user objects
        # with overrides, and plain Objects — each class must cache its
        # own target.
        assert_equivalent("""
            class Loud { String toString() { return "LOUD"; } }
            class Demo {
                static void main() {
                    Object[] xs = new Object[3];
                    StringBuffer sb = new StringBuffer();
                    sb.append("buf");
                    xs[0] = sb; xs[1] = new Loud(); xs[2] = "str";
                    for (int round = 0; round < 2; round++) {
                        for (int i = 0; i < xs.length; i++) {
                            System.out.println(xs[i].toString());
                        }
                    }
                }
            }
        """)


# ---------------------------------------------------------------------------
# Inline-cache behaviour and metrics
# ---------------------------------------------------------------------------


def _ic_counts():
    family = REGISTRY.get("maya_interp_ic_events_total")
    return {labels: child.value for labels, child in family.samples()}


class TestInlineCaches:
    def test_megamorphic_transition(self):
        decls = "\n".join(
            f"class C{i} extends Base {{ int tag() {{ return {i}; }} }}"
            for i in range(10))
        news = "\n".join(
            f"xs[{i}] = new C{i}();" for i in range(10))
        source = f"""
            class Base {{ int tag() {{ return -1; }} }}
            {decls}
            class Demo {{
                static int main() {{
                    Base[] xs = new Base[10];
                    {news}
                    int total = 0;
                    for (int round = 0; round < 3; round++) {{
                        for (int i = 0; i < xs.length; i++) {{
                            total += xs[i].tag();
                        }}
                    }}
                    return total;
                }}
            }}
        """
        program = compile_source(source)
        before = _ic_counts()
        interp = Interpreter(program, backend="closure")
        assert interp.run_static("Demo") == 3 * sum(range(10))
        after = _ic_counts()
        mega = after.get(("call", "megamorphic"), 0) - \
            before.get(("call", "megamorphic"), 0)
        hits = after.get(("call", "hit"), 0) - \
            before.get(("call", "hit"), 0)
        # 10 receiver classes at one site: 8 cached, 2 spill to
        # megamorphic lookups every round after that.
        assert mega >= 4
        assert hits >= 8 * 2  # cached classes keep hitting

    def test_plan_reused_across_interpreters(self):
        source = """
            class Demo {
                static int main() {
                    int t = 0;
                    for (int i = 0; i < 5; i++) { t += i; }
                    return t;
                }
            }
        """
        program = compile_source(source)
        family = REGISTRY.get("maya_interp_closure_compiles_total")

        def compiled_count():
            return sum(child.value for labels, child in family.samples()
                       if labels[0] == "compiled")

        first = Interpreter(program, backend="closure")
        assert first.run_static("Demo") == 10
        after_first = compiled_count()
        second = Interpreter(program, backend="closure")
        assert second.run_static("Demo") == 10
        assert compiled_count() == after_first  # plan cache hit

    def test_profile_renders_ic_section(self, tmp_path, capsys):
        src = tmp_path / "demo.maya"
        src.write_text("""
            class Greeter { String greet() { return "yo"; } }
            class Demo {
                static void main() {
                    Greeter g = new Greeter();
                    for (int i = 0; i < 10; i++) {
                        System.out.println(g.greet());
                    }
                }
            }
        """)
        assert mayac_main([str(src), "--run", "Demo",
                           "--backend", "closure", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "inline caches (closure backend):" in err
        assert "call" in err

    def test_metrics_out_exports_ic_families(self, tmp_path, capsys):
        src = tmp_path / "demo.maya"
        src.write_text("""
            class Demo {
                static void main() {
                    StringBuffer sb = new StringBuffer();
                    for (int i = 0; i < 5; i++) { sb.append("x"); }
                    System.out.println(sb.toString());
                }
            }
        """)
        out = tmp_path / "metrics.json"
        assert mayac_main([str(src), "--run", "Demo",
                           "--backend", "closure",
                           "--metrics-out", str(out),
                           "--metrics-format", "json"]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        names = {family["name"] for family in payload["families"]}
        assert "maya_interp_ic_events_total" in names
        assert "maya_interp_ops_total" in names
        assert "maya_interp_closure_compiles_total" in names

    def test_prometheus_export_includes_ic(self, tmp_path, capsys):
        src = tmp_path / "demo.maya"
        src.write_text("class Demo { static void main() "
                       "{ System.out.println(\"m\"); } }")
        out = tmp_path / "metrics.prom"
        assert mayac_main([str(src), "--run", "Demo",
                           "--backend", "closure",
                           "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "maya_interp_ops_total" in text


# ---------------------------------------------------------------------------
# Counters view (the obs.metrics port)
# ---------------------------------------------------------------------------


class TestCountersView:
    SRC = """
        class Demo {
            int f;
            int poke() { f = f + 1; return f; }
            static int main() {
                Demo d = new Demo();
                d.poke(); d.poke();
                return d.poke();
            }
        }
    """

    def test_snapshot_shape(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program)
        interp.run_static("Demo")
        snapshot = interp.counters.snapshot()
        assert sorted(snapshot) == sorted(
            ["allocations", "method_calls", "field_reads", "field_writes",
             "array_reads", "array_writes", "statements"])
        assert all(isinstance(v, int) for v in snapshot.values())
        assert snapshot["allocations"] == 1
        assert snapshot["method_calls"] == 4  # main + 3x poke

    def test_reset_rebaselines(self):
        program = compile_source(self.SRC)
        interp = Interpreter(program)
        interp.run_static("Demo")
        assert interp.counters.method_calls > 0
        interp.counters.reset()
        assert interp.counters.method_calls == 0
        assert interp.counters.snapshot()["statements"] == 0

    def test_views_are_per_interpreter(self):
        program = compile_source(self.SRC)
        first = Interpreter(program)
        first.run_static("Demo")
        second = Interpreter(program)
        assert second.counters.method_calls == 0
        second.run_static("Demo")
        assert second.counters.method_calls == 4

    def test_registry_family_accumulates(self):
        program = compile_source(self.SRC)
        family = REGISTRY.get("maya_interp_ops_total")
        before = {labels: child.value for labels, child in family.samples()}
        interp = Interpreter(program)
        interp.run_static("Demo")
        after = {labels: child.value for labels, child in family.samples()}
        assert after[("method_calls",)] - \
            before.get(("method_calls",), 0) == 4


# ---------------------------------------------------------------------------
# Checker bookkeeping the backend relies on
# ---------------------------------------------------------------------------


class TestDeclaredLocals:
    def test_body_stamped_with_declared_count(self):
        program = compile_source("""
            class Demo {
                static int main() {
                    int a = 1;
                    { int b = 2; int c = 3; }
                    for (int i = 0; i < 2; i++) { int d = i; }
                    return a;
                }
            }
        """)
        decl = program.class_named("Demo").decl
        method = next(m for m in decl.members
                      if getattr(m, "name", None) is not None
                      and m.name.name == "main")
        # a, b, c, i, d — five bindings under the method root.
        assert method.body.declared_locals == 5

    def test_formals_counted(self):
        program = compile_source("""
            class Demo {
                static int add(int x, int y) { int z = x + y; return z; }
                static int main() { return Demo.add(1, 2); }
            }
        """)
        decl = program.class_named("Demo").decl
        method = next(m for m in decl.members
                      if getattr(m, "name", None) is not None
                      and m.name.name == "add")
        assert method.body.declared_locals == 3  # x, y, z

    def test_node_kind_tags(self):
        from repro.ast import nodes as n

        assert n.MethodInvocation.node_kind == "method_invocation"
        assert n.IfStmt.node_kind == "if_stmt"
        assert n.Literal.node_kind == "literal"
        assert n.BlockStmts.node_kind == "block_stmts"
        assert n.LazyNode.node_kind == "lazy_node"


# ---------------------------------------------------------------------------
# Every shipped example under every backend
# ---------------------------------------------------------------------------


class TestExamplesUnderAllBackends:
    @pytest.mark.parametrize("name", SCRIPTS)
    def test_example_script_identical_stdout(self, name, capsys,
                                             monkeypatch):
        from repro.hygiene import reset_fresh_names

        outputs = {}
        for backend in BACKENDS:
            # Gensym counters are process-wide; reset so the expanded
            # source some examples print is identical across the runs.
            reset_fresh_names()
            monkeypatch.setenv("MAYA_BACKEND", backend)
            run_example(name)
            outputs[backend] = capsys.readouterr().out
        for backend in BACKENDS[1:]:
            assert outputs["walk"] == outputs[backend]
        assert outputs["pycode"].strip()

    def test_hello_maya_identical_stdout(self, capsys):
        outputs = {}
        for backend in BACKENDS:
            assert mayac_main([HELLO, "--run", "Hello",
                               "--backend", backend]) == 0
            outputs[backend] = capsys.readouterr().out
        for backend in BACKENDS[1:]:
            assert outputs["walk"] == outputs[backend]
        assert "hello, maya" in outputs["pycode"]


# ---------------------------------------------------------------------------
# Macro and MultiJava expansions under the closure backend
# ---------------------------------------------------------------------------


class TestExpandedCodeUnderClosure:
    def test_foreach_expansion(self):
        assert_equivalent("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    Vector v = new Vector();
                    v.addElement("alpha");
                    v.addElement("beta");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """, macros=True)

    def test_multijava_dispatchers_compile_once(self):
        source = """
            use multijava.MultiJava;
            class Shape { }
            class Circle extends Shape { }
            class Square extends Shape { }
            class Namer {
                String name(Shape s) { return "shape"; }
                String name(Shape@Circle c) { return "circle"; }
                String name(Shape@Square sq) { return "square"; }
            }
            class Demo {
                static void main() {
                    Namer n = new Namer();
                    Shape[] xs = new Shape[3];
                    xs[0] = new Shape(); xs[1] = new Circle();
                    xs[2] = new Square();
                    for (int round = 0; round < 2; round++) {
                        for (int i = 0; i < xs.length; i++) {
                            System.out.println(n.name(xs[i]));
                        }
                    }
                }
            }
        """
        results = run_all(source, multijava=True)
        walk = results["walk"]
        for backend in BACKENDS[1:]:
            assert walk[1] == results[backend][1]
            assert walk[2] == results[backend][2]
        assert walk[1][:3] == ["shape", "circle", "square"]


# ---------------------------------------------------------------------------
# Fallback: unsupported shapes run on the walker, transparently
# ---------------------------------------------------------------------------


class TestWalkFallback:
    def test_walk_sentinel_is_cached(self):
        program = compile_source("""
            class Demo {
                static int main() { return 7; }
            }
        """)
        decl = program.class_named("Demo").decl
        method_decl = decl.members[0]
        klass = program.class_named("Demo").type
        method = klass.methods["main"][0]
        plan = closures.plan_for(method)
        assert plan is not closures.WALK
        cached_epoch, cached = method._closure_plan
        assert cached is plan
        assert closures.plan_for(method) is plan

    def test_intercession_invalidates_plans(self):
        program = compile_source("""
            class Demo {
                static int main() { return 7; }
            }
        """)
        klass = program.class_named("Demo").type
        method = klass.methods["main"][0]
        first = closures.plan_for(method)
        from repro.types import bump_member_epoch

        bump_member_epoch()
        second = closures.plan_for(method)
        assert second is not first  # recompiled under the new epoch


# ---------------------------------------------------------------------------
# Pycode backend: codegen metrics, deopt paths, plan invalidation
# ---------------------------------------------------------------------------


def _codegen_counts():
    family = REGISTRY.get("maya_interp_codegen_total")
    return {labels[0]: child.value for labels, child in family.samples()}


def _deopt_count(site="call"):
    family = REGISTRY.get("maya_interp_codegen_deopts_total")
    return sum(child.value for labels, child in family.samples()
               if labels[0] == site)


POLY_SOURCE = """
    class Base { int tag() { return 1; } }
    class Sub extends Base { int tag() { return 2; } }
    class Demo {
        static int poke(Base b) { return b.tag(); }
        static int main() {
            Base[] xs = new Base[6];
            for (int i = 0; i < 6; i++) {
                if (i % 2 == 0) { xs[i] = new Base(); }
                else { xs[i] = new Sub(); }
            }
            int total = 0;
            for (int i = 0; i < 6; i++) { total += Demo.poke(xs[i]); }
            return total;
        }
    }
"""


class TestPycodeBackend:
    def test_pycode_actually_compiles(self):
        # Guard against silent wholesale fallback: a plain program must
        # produce at least one compiled plan and zero walker fallbacks.
        program = compile_source("""
            class Demo {
                static int helper(int n) { return n * 2; }
                static int main() { return Demo.helper(21); }
            }
        """)
        before = _codegen_counts()
        interp = Interpreter(program, backend="pycode")
        assert interp.run_static("Demo") == 42
        after = _codegen_counts()
        compiled = after.get("compiled", 0) - before.get("compiled", 0)
        fallback = after.get("fallback", 0) - before.get("fallback", 0)
        assert compiled >= 2  # main + helper
        assert fallback == 0

    def test_guard_failure_deopts_and_preserves_semantics(self):
        # A monomorphic-patched site that later sees a second receiver
        # class must deopt (counter bumps) with identical observables.
        walk = assert_equivalent(POLY_SOURCE)
        assert walk[0] == 9  # 3 * Base.tag() + 3 * Sub.tag()
        program = compile_source(POLY_SOURCE)
        before = _deopt_count()
        interp = Interpreter(program, backend="pycode")
        assert interp.run_static("Demo") == 9
        assert _deopt_count() - before >= 1

    def test_megamorphic_site_unpatches_permanently(self):
        decls = "\n".join(
            f"class C{i} extends Base {{ int tag() {{ return {i}; }} }}"
            for i in range(10))
        news = "\n".join(f"xs[{i}] = new C{i}();" for i in range(10))
        source = f"""
            class Base {{ int tag() {{ return -1; }} }}
            {decls}
            class Demo {{
                static int main() {{
                    Base[] xs = new Base[10];
                    {news}
                    int total = 0;
                    for (int round = 0; round < 3; round++) {{
                        for (int i = 0; i < xs.length; i++) {{
                            total += xs[i].tag();
                        }}
                    }}
                    return total;
                }}
            }}
        """
        program = compile_source(source)
        before = _deopt_count()
        interp = Interpreter(program, backend="pycode")
        assert interp.run_static("Demo") == 3 * sum(range(10))
        # C0 patches the site; C1..C8 deopt until the MEGAMORPHIC
        # threshold unpatches it for good, so rounds 2-3 add nothing.
        delta = _deopt_count() - before
        assert delta == closures.MEGAMORPHIC

    def test_pycode_plan_reused_across_interpreters(self):
        program = compile_source("""
            class Demo {
                static int main() {
                    int t = 0;
                    for (int i = 0; i < 5; i++) { t += i; }
                    return t;
                }
            }
        """)
        first = Interpreter(program, backend="pycode")
        assert first.run_static("Demo") == 10
        baseline = _codegen_counts().get("compiled", 0)
        second = Interpreter(program, backend="pycode")
        assert second.run_static("Demo") == 10
        assert _codegen_counts().get("compiled", 0) == baseline

    def test_intercession_recompiles_and_unpatches_sites(self):
        program = compile_source(POLY_SOURCE)
        interp = Interpreter(program, backend="pycode")
        assert interp.run_static("Demo") == 9
        klass = program.class_named("Demo").type
        method = next(m for m in klass.methods["poke"])
        plan = pycodegen.plan_for(method, interp)
        assert plan is not pycodegen.FALLBACK
        # The b.tag() site saw Base first, so its guard cell is patched.
        patched = [k for k in plan.ns
                   if k.startswith("_s") and k.endswith("_k")
                   and plan.ns[k] is not None]
        assert patched
        from repro.types import bump_member_epoch

        bump_member_epoch()
        # Live-plan listener unpatched every specialized site...
        assert all(plan.ns[k] is None for k in patched)
        # ...and the memoized plan is recompiled under the new epoch.
        assert pycodegen.plan_for(method, interp) is not plan

    def test_dump_source_is_compilable_python(self):
        program = compile_source(POLY_SOURCE)
        interp = Interpreter(program, backend="pycode")
        interp.run_static("Demo")
        klass = program.class_named("Demo").type
        method = next(m for m in klass.methods["main"])
        plan = pycodegen.plan_for(method, interp)
        assert plan is not pycodegen.FALLBACK
        assert "def _m(interp, v_this" in plan.source
        compile(plan.source, "<roundtrip>", "exec")


# ---------------------------------------------------------------------------
# Multi-module programs: the same parity bar, across import edges
# ---------------------------------------------------------------------------


MODULE_PROGRAM = {
    "lib.Shape": """
        class Shape { int area() { return 0; } }
    """,
    "lib.Square": """
        import lib.Shape;
        class Square extends Shape {
            int side;
            Square(int side) { this.side = side; }
            int area() { return side * side; }
        }
    """,
    "lib.Loops": """
        use maya.util.ForEach;
        import lib.Shape;
        class Loops {
            static int total(Shape[] shapes) {
                int sum = 0;
                StringBuffer seen = new StringBuffer();
                shapes.foreach(Shape s) {
                    sum += s.area();
                    seen.append("#");
                }
                System.out.println("visited " + seen.toString());
                return sum;
            }
        }
    """,
    "app.Main": """
        import lib.Shape;
        import lib.Square;
        import lib.Loops;
        class Main {
            static int main() {
                Shape[] shapes = new Shape[3];
                shapes[0] = new Square(2);
                shapes[1] = new Shape();
                shapes[2] = new Square(5);
                int total = Loops.total(shapes);
                System.out.println("total " + total);
                return total;
            }
        }
    """,
}

MODULE_THROWING = {
    "lib.Depth": """
        class Depth {
            static int probe(int[] values, int index) {
                return values[index];
            }
        }
    """,
    "app.Main": """
        import lib.Depth;
        class Main {
            static int main() {
                int[] values = new int[2];
                return Depth.probe(values, 7);
            }
        }
    """,
}


def compile_modules(sources, roots=("app.Main",), macros=False):
    from repro.macros import install_macro_library
    from repro.modules import MemorySources, ModuleBuilder

    builder = ModuleBuilder(MemorySources(sources))
    if macros:
        install_macro_library(builder.compiler)
    return builder.build(list(roots), need_bodies=True).program


class TestMultiModuleDifferential:
    """Programs spanning several modules — including a Mayan exported
    over an import edge — meet the same cross-backend parity bar as
    single files: identical stdout, counters, and thrown classes."""

    def test_stdout_and_counters_identical(self):
        program = compile_modules(MODULE_PROGRAM, macros=True)
        results = {}
        for backend in BACKENDS:
            interp = Interpreter(program, backend=backend)
            value = interp.run_static("Main")
            results[backend] = (value, interp.output,
                                interp.counters.snapshot())
        walk = results["walk"]
        for backend in BACKENDS[1:]:
            assert walk == results[backend], f"{backend} diverged"
        assert walk[0] == 29
        assert walk[1] == ["visited ###", "total 29"]

    def test_incremental_program_matches_clean_program(self, tmp_path):
        # The program materialized from a warm cache must behave
        # identically to a cleanly compiled one, on every backend.
        from repro.macros import install_macro_library
        from repro.modules import MemorySources, ModuleBuilder

        def build(cache_dir):
            builder = ModuleBuilder(MemorySources(MODULE_PROGRAM),
                                    cache_dir=cache_dir)
            install_macro_library(builder.compiler)
            return builder.build(["app.Main"], need_bodies=True).program

        build(str(tmp_path))  # populate
        warm = build(str(tmp_path))  # all-reused, rematerialized
        clean = compile_modules(MODULE_PROGRAM, macros=True)
        for backend in BACKENDS:
            runs = []
            for program in (warm, clean):
                interp = Interpreter(program, backend=backend)
                value = interp.run_static("Main")
                runs.append((value, interp.output,
                             interp.counters.snapshot()))
            assert runs[0] == runs[1], f"{backend}: warm != clean"

    def test_same_java_throw_across_modules(self):
        program = compile_modules(MODULE_THROWING)
        thrown = {}
        for backend in BACKENDS:
            interp = Interpreter(program, backend=backend)
            with pytest.raises(JavaThrow) as exc:
                interp.run_static("Main")
            thrown[backend] = exc.value.value.class_type.name
        for backend in BACKENDS[1:]:
            assert thrown["walk"] == thrown[backend]
        assert thrown["walk"] == "java.lang.IndexOutOfBoundsException"


class TestPlanCacheBound:
    def test_registry_evicts_past_bound(self):
        class FakeMethod:
            pass

        class Stats:
            def __init__(self):
                self.evictions = 0

            def evict(self):
                self.evictions += 1

        stats = Stats()
        registry = closures.PlanRegistry("_test_plan", 2, stats)
        methods = [FakeMethod() for _ in range(3)]
        for m in methods:
            m._test_plan = (0, object())
            registry.note(m)
        assert stats.evictions == 1
        assert not hasattr(methods[0], "_test_plan")  # LRU victim
        assert hasattr(methods[1], "_test_plan")
        assert hasattr(methods[2], "_test_plan")
        assert len(registry) == 2

    def test_note_refreshes_recency(self):
        class FakeMethod:
            pass

        class Stats:
            def __init__(self):
                self.evictions = 0

            def evict(self):
                self.evictions += 1

        stats = Stats()
        registry = closures.PlanRegistry("_test_plan", 2, stats)
        a, b, c = FakeMethod(), FakeMethod(), FakeMethod()
        for m in (a, b):
            m._test_plan = (0, object())
            registry.note(m)
        registry.note(a)  # refresh: b becomes the LRU victim
        c._test_plan = (0, object())
        registry.note(c)
        assert not hasattr(b, "_test_plan")
        assert hasattr(a, "_test_plan")
        assert hasattr(c, "_test_plan")
