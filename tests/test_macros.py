"""The rest of the macro library: assert, printf, collect, typedef."""

import pytest

from repro.interp import Interpreter, JavaThrow
from repro.macros.printf import PrintfError
from tests.conftest import compile_source, run_main


class TestAssert:
    def test_passing_assert(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Assert;
                    assert(1 + 1 == 2);
                    System.out.println("ok");
                }
            }
        """, macros=True)
        assert lines == ["ok"]

    def test_failing_assert_throws_with_source_text(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class Demo {
                    static void main() {
                        use maya.util.Assert;
                        int x = 1;
                        assert(x > 5);
                    }
                }
            """, macros=True)
        assert "AssertionError" in str(exc.value)
        assert "x > 5" in str(exc.value)

    def test_assert_with_message(self):
        with pytest.raises(JavaThrow) as exc:
            run_main("""
                class Demo {
                    static void main() {
                        use maya.util.Assert;
                        assert(false, "custom message");
                    }
                }
            """, macros=True)
        assert "custom message" in str(exc.value)

    def test_assert_not_reserved(self):
        """Without the import, assert is an ordinary method name."""
        lines = run_main("""
            class Demo {
                static void assert_(boolean b) { System.out.println(b); }
                static void main() { assert_(true); }
            }
        """, macros=True)
        assert lines == ["true"]


class TestPrintf:
    def test_expansion_and_output(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Printf;
                    System.out.printf("%s has %d items\\n", "cart", 3);
                }
            }
        """, macros=True)
        assert lines == ["cart has 3 items"]

    def test_static_type_checking_of_directives(self):
        """%d with a String argument is a compile-time error."""
        with pytest.raises(PrintfError):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.Printf;
                        System.out.printf("%d\\n", "not a number");
                    }
                }
            """, macros=True)

    def test_argument_count_mismatch(self):
        with pytest.raises(PrintfError):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.Printf;
                        System.out.printf("%s %s\\n", "only one");
                    }
                }
            """, macros=True)

    def test_unused_arguments_rejected(self):
        with pytest.raises(PrintfError):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.Printf;
                        System.out.printf("none\\n", 1);
                    }
                }
            """, macros=True)

    def test_needs_literal_format(self):
        with pytest.raises(PrintfError):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.Printf;
                        String f = "%s";
                        System.out.printf(f, 1);
                    }
                }
            """, macros=True)

    def test_percent_escape(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Printf;
                    System.out.printf("100%%\\n");
                }
            }
        """, macros=True)
        assert lines == ["100%"]

    def test_boolean_and_float_directives(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Printf;
                    System.out.printf("%b %f\\n", true, 1.5);
                }
            }
        """, macros=True)
        assert lines == ["true 1.5"]


class TestCollect:
    def test_collect_layers_on_foreach(self):
        lines = run_main("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.Collect;
                    Vector names = new Vector();
                    names.addElement("ann");
                    names.addElement("bob");
                    Vector upper = new Vector();
                    collect(upper, s.toUpperCase() : String s : names.elements());
                    System.out.println(upper.elementAt(0));
                    System.out.println(upper.elementAt(1));
                }
            }
        """, macros=True)
        assert lines == ["ANN", "BOB"]

    def test_collect_expansion_contains_foreach_output(self):
        program = compile_source("""
            import java.util.*;
            class Demo {
                static void main() {
                    use maya.util.Collect;
                    Vector src = new Vector();
                    Vector dst = new Vector();
                    collect(dst, x : Object x : src.elements());
                }
            }
        """, macros=True)
        # The collect template generated foreach syntax, which the
        # foreach Mayans expanded further: macro layering.
        assert "hasMoreElements" in program.source()


class TestTypedef:
    def test_alias_substitution(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Typedef;
                    typedef (Table = java.util.Hashtable) {
                        Table t = new Table();
                        t.put("k", "v");
                        System.out.println(t.get("k"));
                    }
                }
            }
        """, macros=True)
        assert lines == ["v"]

    def test_alias_is_lexically_scoped(self):
        """The alias must not leak past the typedef block."""
        with pytest.raises(Exception):
            compile_source("""
                class Demo {
                    static void main() {
                        use maya.util.Typedef;
                        typedef (Table = java.util.Hashtable) { }
                        Table t;
                    }
                }
            """, macros=True)

    def test_other_names_resolve_normally(self):
        """The local Subst Mayan uses nextRewrite for non-matches."""
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Typedef;
                    typedef (V = java.util.Vector) {
                        V v = new V();
                        String s = "still works";
                        System.out.println(s);
                    }
                }
            }
        """, macros=True)
        assert lines == ["still works"]

    def test_nested_typedefs(self):
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.Typedef;
                    typedef (A = java.util.Vector) {
                        typedef (B = java.util.Hashtable) {
                            A v = new A();
                            B h = new B();
                            v.addElement("1");
                            h.put("2", "2");
                            System.out.println(v.size() + h.size());
                        }
                    }
                }
            }
        """, macros=True)
        assert lines == ["2"]
