"""Unit tests for the LALR(1) generator and parse driver (experiment E11:
unresolved conflicts are rejected, not defaulted away)."""

import pytest

from repro.grammar import Assoc, Grammar, nonterminal
from repro.lalr import ConflictError, ParseError, Parser, ParserContext, build_tables
from repro.lexer import scan


def expr_grammar(with_precedence: bool = True) -> Grammar:
    g = Grammar("expr")
    E = nonterminal("TestE")
    if with_precedence:
        g.precedence.declare(Assoc.LEFT, "+", "-")
        g.precedence.declare(Assoc.LEFT, "*")
        g.precedence.declare(Assoc.RIGHT, "^")
    g.add_production(E, ["IntLit"], tag="te_lit",
                     action=lambda ctx, v: v[0].value, internal=True)
    g.add_production(E, [E, "+", E], tag="te_add",
                     action=lambda ctx, v: v[0] + v[2], internal=True)
    g.add_production(E, [E, "-", E], tag="te_sub",
                     action=lambda ctx, v: v[0] - v[2], internal=True)
    g.add_production(E, [E, "*", E], tag="te_mul",
                     action=lambda ctx, v: v[0] * v[2], internal=True)
    g.add_production(E, [E, "^", E], tag="te_pow",
                     action=lambda ctx, v: v[0] ** v[2], internal=True)
    g.declare_start(E)
    return g


def parse_value(grammar, start, text, **kwargs):
    tables = build_tables(grammar)
    parser = Parser(tables, ParserContext())
    value, consumed = parser.parse(start, scan(text), **kwargs)
    return value


class TestPrecedence:
    def test_left_associativity(self):
        assert parse_value(expr_grammar(), "TestE", "10 - 3 - 2") == 5

    def test_right_associativity(self):
        assert parse_value(expr_grammar(), "TestE", "2 ^ 3 ^ 2") == 512

    def test_precedence_levels(self):
        assert parse_value(expr_grammar(), "TestE", "2 + 3 * 4") == 14

    def test_mixed(self):
        assert parse_value(expr_grammar(), "TestE", "2 * 3 + 4 * 5") == 26


class TestConflictRejection:
    def test_ambiguous_grammar_rejected(self):
        # Without precedence, E -> E + E is a shift/reduce conflict; the
        # generator must reject it (no YACC-style default resolution).
        with pytest.raises(ConflictError) as exc:
            build_tables(expr_grammar(with_precedence=False))
        assert "shift/reduce" in str(exc.value)

    def test_reduce_reduce_rejected(self):
        g = Grammar("rr")
        S = nonterminal("TestS_rr")
        A = nonterminal("TestA_rr")
        B = nonterminal("TestB_rr")
        g.add_production(S, [A], tag="rr_a", internal=True,
                         action=lambda ctx, v: v[0])
        g.add_production(S, [B], tag="rr_b", internal=True,
                         action=lambda ctx, v: v[0])
        g.add_production(A, ["Identifier"], tag="rr_ai", internal=True,
                         action=lambda ctx, v: v[0])
        g.add_production(B, ["Identifier"], tag="rr_bi", internal=True,
                         action=lambda ctx, v: v[0])
        g.declare_start(S)
        with pytest.raises(ConflictError) as exc:
            build_tables(g)
        assert "reduce/reduce" in str(exc.value)

    def test_nonassoc_removes_action(self):
        g = Grammar("na")
        E = nonterminal("TestE_na")
        g.precedence.declare(Assoc.NONASSOC, "<")
        g.add_production(E, ["IntLit"], tag="na_lit", internal=True,
                         action=lambda ctx, v: v[0].value)
        g.add_production(E, [E, "<", E], tag="na_lt", internal=True,
                         action=lambda ctx, v: v[0] < v[2])
        g.declare_start(E)
        tables = build_tables(g)
        parser = Parser(tables, ParserContext())
        assert parser.parse("TestE_na", scan("1 < 2"))[0] is True
        with pytest.raises(ParseError):
            parser.parse("TestE_na", scan("1 < 2 < 3"))


class TestDriver:
    def test_full_consumption_required(self):
        with pytest.raises(ParseError):
            parse_value(expr_grammar(), "TestE", "1 + 2 junk")

    def test_prefix_parse(self):
        g = expr_grammar()
        tables = build_tables(g)
        parser = Parser(tables, ParserContext())
        value, consumed = parser.parse("TestE", scan("1 + 2 ; x"),
                                       allow_prefix=True)
        assert value == 3
        assert consumed == 3

    def test_prefix_parse_with_offset(self):
        g = expr_grammar()
        tables = build_tables(g)
        parser = Parser(tables, ParserContext())
        tokens = scan("1 + 2 ; 4 * 5")
        _, consumed = parser.parse("TestE", tokens, allow_prefix=True)
        value, _ = parser.parse("TestE", tokens, allow_prefix=True,
                                offset=consumed + 1)
        assert value == 20

    def test_error_reports_expectations(self):
        with pytest.raises(ParseError) as exc:
            parse_value(expr_grammar(), "TestE", "1 +")
        assert "IntLit" in str(exc.value)

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as exc:
            parse_value(expr_grammar(), "TestE", "1 + +")
        assert exc.value.location.column == 5

    def test_unknown_start_symbol(self):
        tables = build_tables(expr_grammar())
        with pytest.raises(KeyError):
            Parser(tables, ParserContext()).parse("Nope", scan("1"))

    def test_empty_input_rejected_for_nonnullable(self):
        with pytest.raises(ParseError):
            parse_value(expr_grammar(), "TestE", "")


class TestMultiStart:
    def test_separate_eof_per_start(self):
        # Two starts whose follow sets would collide under a shared EOF.
        g = Grammar("ms")
        X = nonterminal("TestX_ms")
        Y = nonterminal("TestY_ms")
        g.add_production(X, ["Identifier"], tag="ms_x", internal=True,
                         action=lambda ctx, v: ("x", v[0].text))
        g.add_production(Y, [X], tag="ms_y", internal=True,
                         action=lambda ctx, v: ("y", v[0]))
        g.declare_start(X, Y)
        tables = build_tables(g)
        parser = Parser(tables, ParserContext())
        assert parser.parse("TestX_ms", scan("a"))[0] == ("x", "a")
        assert parser.parse("TestY_ms", scan("a"))[0] == ("y", ("x", "a"))


class TestTableCache:
    def test_tables_cached_by_fingerprint(self):
        from repro.lalr import tables_for

        g = expr_grammar()
        first = tables_for(g)
        second = tables_for(g)
        assert first is second

    def test_grammar_extension_invalidates(self):
        from repro.lalr import tables_for

        g = expr_grammar()
        first = tables_for(g)
        E = nonterminal("TestE")
        g.add_production(E, ["(", E, ")"], tag="te_paren", internal=True,
                         action=lambda ctx, v: v[1])
        second = tables_for(g)
        assert first is not second
