"""The unparser: expanded ASTs back to compilable source."""

import pytest

from repro.ast import nodes as n
from repro.ast import to_source
from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lexer import stream_lex
from tests.conftest import compile_source


def roundtrip_expr(source: str) -> str:
    ctx = CompileContext(CompileEnv())
    parser = Parser(ctx.env.tables(), ctx)
    expr, _ = parser.parse("Expression", stream_lex(source))
    return to_source(expr)


class TestExpressionUnparse:
    @pytest.mark.parametrize("source", [
        "1 + 2 * 3",
        "a.b.c",
        "f(x, y)",
        "new java.util.Vector()",
        "xs[i]",
        "(int) d",
        "a instanceof java.lang.String",
        "x = y + 1",
        "cond ? a : b",
        "!flag",
        "i++",
        "this.field",
    ])
    def test_roundtrip_fixed_point(self, source):
        once = roundtrip_expr(source)
        twice = roundtrip_expr(once)
        assert once == twice

    def test_string_literal_escaped(self):
        assert roundtrip_expr('"a\\nb"') == '"a\\nb"'

    def test_char_literal(self):
        assert roundtrip_expr("'x'") == "'x'"

    def test_boolean_literals(self):
        assert roundtrip_expr("true") == "true"
        assert roundtrip_expr("null") == "null"


class TestProgramUnparse:
    def test_structure_preserved(self):
        program = compile_source("""
            package demo;
            import java.util.*;
            class Widget extends Object {
                static int count;
                int id;
                Widget(int id) { this.id = id; }
                int getId() { return id; }
            }
        """)
        source = program.source()
        assert "package demo;" in source
        assert "import java.util.*;" in source
        assert "class Widget extends Object" in source
        assert "Widget(int id)" in source

    def test_statements_rendered(self):
        program = compile_source("""
            class Flow {
                static int f(int x) {
                    if (x > 0) { x--; } else x++;
                    while (x < 10) x += 2;
                    do { x--; } while (x > 5);
                    for (int i = 0; i < 3; i++) x += i;
                    int[] xs = { 1, 2 };
                    return x + xs[0];
                }
            }
        """)
        source = program.source()
        for fragment in ["if (x > 0)", "else", "while (x < 10)", "do",
                         "for (int i = 0; i < 3; i++)", "{ 1, 2 }",
                         "return"]:
            assert fragment in source, fragment

    def test_expanded_output_reparses(self):
        """Unparsed output of a plain program recompiles to the same
        unparsed output (fixed point)."""
        program = compile_source("""
            class P {
                static int fib(int n) {
                    return n < 2 ? n : fib(n - 1) + fib(n - 2);
                }
            }
        """)
        once = program.source()
        again = compile_source(once).source()
        assert once == again

    def test_structural_equality_helper(self):
        a = n.BinaryExpr("+", n.Literal("int", 1), n.Literal("int", 2))
        b = n.BinaryExpr("+", n.Literal("int", 1), n.Literal("int", 2))
        c = n.BinaryExpr("-", n.Literal("int", 1), n.Literal("int", 2))
        assert n.structurally_equal(a, b)
        assert not n.structurally_equal(a, c)
