"""Shared test helpers."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/golden/ snapshots from current expansions",
    )

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.multijava import install_multijava


def make_compiler(macros: bool = False, multijava: bool = False) -> MayaCompiler:
    compiler = MayaCompiler()
    if macros:
        install_macro_library(compiler)
    if multijava:
        install_multijava(compiler)
    return compiler


def compile_source(source: str, macros: bool = False, multijava: bool = False):
    return make_compiler(macros, multijava).compile(source)


def run_main(source: str, cls: str = "Demo", macros: bool = False,
             multijava: bool = False):
    """Compile, run ``cls.main()``, and return the printed lines."""
    program = compile_source(source, macros, multijava)
    interp = Interpreter(program)
    interp.run_static(cls)
    return interp.output


@pytest.fixture
def compiler():
    return make_compiler()


@pytest.fixture
def macro_compiler():
    return make_compiler(macros=True)


@pytest.fixture
def mj_compiler():
    return make_compiler(multijava=True)
