"""The mayac command-line front end."""

import pytest

from repro.mayac import main


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.maya"
    path.write_text("""
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Vector v = new Vector();
                v.addElement("cli");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """)
    return str(path)


class TestCli:
    def test_compile_only(self, demo_file):
        assert main([demo_file]) == 0

    def test_expand_prints_source(self, demo_file, capsys):
        assert main([demo_file, "--expand"]) == 0
        out = capsys.readouterr().out
        assert "hasMoreElements" in out

    def test_run(self, demo_file, capsys):
        assert main([demo_file, "--run", "Demo"]) == 0
        assert "cli" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("class Broken { int f() { return \"no\"; } }")
        assert main([str(bad)]) == 1
        assert "mayac:" in capsys.readouterr().err

    def test_diagnostics_rendered_with_carets(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("""class Broken {
    int a() { int x = true; return x; }
    int b() { return "nope"; }
}""")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert f"{bad}:2:15: [check] error:" in err
        assert f"{bad}:3:15: [check] error:" in err
        assert "  |     int a() { int x = true; return x; }" in err
        assert "^" in err
        assert "mayac: 2 errors" in err

    def test_max_errors_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("""class Broken {
    int a() { int x = true; return x; }
    int b() { return "nope"; }
    void c() { nosuch(); }
}""")
        assert main([str(bad), "--max-errors", "1"]) == 1
        err = capsys.readouterr().err
        assert "mayac: 1 error" in err
        assert ":3:" not in err

    def test_fuel_flag(self, tmp_path, capsys):
        # --fuel is plumbed into the engine's expansion depth budget;
        # an absurdly low budget trips even the macro library's modest
        # expansions... but a plain class uses none, so it compiles.
        good = tmp_path / "ok.maya"
        good.write_text("class Ok { }")
        assert main([str(good), "--fuel", "1"]) == 0

    def test_use_option(self, tmp_path, capsys):
        source = tmp_path / "app.maya"
        source.write_text("""
            import java.util.*;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("via --use");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """)
        assert main([str(source), "--use", "maya.util.ForEach",
                     "--run", "Demo"]) == 0
        assert "via --use" in capsys.readouterr().out

    def test_multiple_files_accumulate(self, tmp_path, capsys):
        lib = tmp_path / "lib.maya"
        lib.write_text("class Lib { static int seven() { return 7; } }")
        app = tmp_path / "app.maya"
        app.write_text("""
            class App {
                static void main() { System.out.println(Lib.seven()); }
            }
        """)
        assert main([str(lib), str(app), "--run", "App"]) == 0
        assert "7" in capsys.readouterr().out

    def test_multijava_flag(self, tmp_path, capsys):
        source = tmp_path / "mj.maya"
        source.write_text("""
            use multijava.MultiJava;
            class C { }
            class D extends C { }
            class H {
                String f(C c) { return "c"; }
                String f(C@D c) { return "d"; }
            }
            class Demo {
                static void main() {
                    System.out.println(new H().f(new D()));
                }
            }
        """)
        assert main([str(source), "--multijava", "--run", "Demo"]) == 0
        assert "d" in capsys.readouterr().out
