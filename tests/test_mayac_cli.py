"""The mayac command-line front end."""

import pytest

from repro.mayac import cli, main


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.maya"
    path.write_text("""
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Vector v = new Vector();
                v.addElement("cli");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """)
    return str(path)


class TestCli:
    def test_compile_only(self, demo_file):
        assert main([demo_file]) == 0

    def test_expand_prints_source(self, demo_file, capsys):
        assert main([demo_file, "--expand"]) == 0
        out = capsys.readouterr().out
        assert "hasMoreElements" in out

    def test_run(self, demo_file, capsys):
        assert main([demo_file, "--run", "Demo"]) == 0
        assert "cli" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("class Broken { int f() { return \"no\"; } }")
        assert main([str(bad)]) == 1
        assert "mayac:" in capsys.readouterr().err

    def test_diagnostics_rendered_with_carets(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("""class Broken {
    int a() { int x = true; return x; }
    int b() { return "nope"; }
}""")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert f"{bad}:2:15: [check] error:" in err
        assert f"{bad}:3:15: [check] error:" in err
        assert "  |     int a() { int x = true; return x; }" in err
        assert "^" in err
        assert "mayac: 2 errors" in err

    def test_max_errors_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text("""class Broken {
    int a() { int x = true; return x; }
    int b() { return "nope"; }
    void c() { nosuch(); }
}""")
        assert main([str(bad), "--max-errors", "1"]) == 1
        err = capsys.readouterr().err
        assert "mayac: 1 error" in err
        assert ":3:" not in err

    def test_fuel_flag(self, tmp_path, capsys):
        # --fuel is plumbed into the engine's expansion depth budget;
        # an absurdly low budget trips even the macro library's modest
        # expansions... but a plain class uses none, so it compiles.
        good = tmp_path / "ok.maya"
        good.write_text("class Ok { }")
        assert main([str(good), "--fuel", "1"]) == 0

    def test_use_option(self, tmp_path, capsys):
        source = tmp_path / "app.maya"
        source.write_text("""
            import java.util.*;
            class Demo {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("via --use");
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
            }
        """)
        assert main([str(source), "--use", "maya.util.ForEach",
                     "--run", "Demo"]) == 0
        assert "via --use" in capsys.readouterr().out

    def test_multiple_files_accumulate(self, tmp_path, capsys):
        lib = tmp_path / "lib.maya"
        lib.write_text("class Lib { static int seven() { return 7; } }")
        app = tmp_path / "app.maya"
        app.write_text("""
            class App {
                static void main() { System.out.println(Lib.seven()); }
            }
        """)
        assert main([str(lib), str(app), "--run", "App"]) == 0
        assert "7" in capsys.readouterr().out

    def test_multijava_flag(self, tmp_path, capsys):
        source = tmp_path / "mj.maya"
        source.write_text("""
            use multijava.MultiJava;
            class C { }
            class D extends C { }
            class H {
                String f(C c) { return "c"; }
                String f(C@D c) { return "d"; }
            }
            class Demo {
                static void main() {
                    System.out.println(new H().f(new D()));
                }
            }
        """)
        assert main([str(source), "--multijava", "--run", "Demo"]) == 0
        assert "d" in capsys.readouterr().out


class TestDumpCodegen:
    @pytest.fixture
    def calc_file(self, tmp_path):
        path = tmp_path / "calc.maya"
        path.write_text("""
            class Calc {
                int twice(int n) { return n * 2; }
            }
            class Demo {
                static void main() {
                    System.out.println(new Calc().twice(21));
                }
            }
        """)
        return str(path)

    def test_dump_all_methods(self, calc_file, capsys):
        assert main([calc_file, "--dump-codegen"]) == 0
        out = capsys.readouterr().out
        assert "# === Demo.main() ===" in out
        assert "# === Calc.twice(int) ===" in out
        assert "def _m(interp, v_this" in out

    def test_dump_filtered_to_one_method(self, calc_file, capsys):
        assert main([calc_file, "--dump-codegen", "Calc.twice"]) == 0
        out = capsys.readouterr().out
        assert "Calc.twice(int)" in out
        assert "Demo.main" not in out

    def test_dump_unknown_method_fails(self, calc_file, capsys):
        assert main([calc_file, "--dump-codegen", "NoSuch.method"]) == 1
        captured = capsys.readouterr()
        assert "no method matches 'NoSuch.method'" in captured.err

    def test_dump_source_is_valid_python(self, calc_file, capsys):
        assert main([calc_file, "--dump-codegen", "Demo.main"]) == 0
        out = capsys.readouterr().out
        body = out.split("===\n", 1)[1]
        compile(body, "<dump>", "exec")

    def test_dump_composes_with_run(self, calc_file, capsys):
        assert main([calc_file, "--run", "Demo", "--backend", "pycode",
                     "--dump-codegen", "Demo.main"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("42\n")
        assert "# === Demo.main() ===" in out


class TestUnixExitConventions:
    """``cli`` is ``main`` plus signal/pipe hygiene: Ctrl-C exits 130
    and a vanished reader exits 0 — never with a Python traceback."""

    def test_sigint_exits_130(self, demo_file, capsys, monkeypatch):
        from repro.core.compiler import MayaCompiler

        def interrupted(self, source, filename="<string>"):
            raise KeyboardInterrupt

        monkeypatch.setattr(MayaCompiler, "compile", interrupted)
        assert cli([demo_file]) == 130
        err = capsys.readouterr().err
        assert "mayac: interrupted" in err
        assert "Traceback" not in err

    def test_broken_pipe_exits_0(self, demo_file, capsys, monkeypatch):
        import sys

        class ClosedPipe:
            def write(self, text):
                raise BrokenPipeError

            def flush(self):
                raise BrokenPipeError

        monkeypatch.setattr(sys, "stdout", ClosedPipe())
        assert cli([demo_file, "--expand"]) == 0
        assert "Traceback" not in capsys.readouterr().err

    def test_normal_exit_codes_pass_through(self, demo_file, tmp_path,
                                            capsys):
        assert cli([demo_file]) == 0
        bad = tmp_path / "bad.maya"
        bad.write_text('class Broken { int f() { return "no"; } }')
        assert cli([str(bad)]) == 1
        capsys.readouterr()


class TestDaemonFrontEnd:
    """``mayac --daemon ADDR`` delegates to a running mayad."""

    @pytest.fixture
    def daemon(self):
        from repro.server import DaemonConfig, MayaDaemon

        server = MayaDaemon(DaemonConfig(workers=1,
                                         prewarm=False)).start()
        yield server
        server.stop()

    def test_expand_via_daemon(self, daemon, demo_file, capsys):
        assert main(["--daemon", daemon.address, demo_file,
                     "--expand"]) == 0
        assert "hasMoreElements" in capsys.readouterr().out

    def test_compile_error_via_daemon(self, daemon, tmp_path, capsys):
        bad = tmp_path / "bad.maya"
        bad.write_text('class Broken { int f() { return "no"; } }')
        assert main(["--daemon", daemon.address, str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "mayac: 1 error" in err

    def test_run_is_rejected_with_daemon(self, daemon, demo_file,
                                         capsys):
        assert main(["--daemon", daemon.address, demo_file,
                     "--run", "Demo"]) == 2
        assert "--run" in capsys.readouterr().err

    def test_unreachable_daemon_exits_3(self, demo_file, capsys,
                                        monkeypatch):
        import socket

        from repro.server.client import MayaClient

        victim = socket.socket()
        victim.bind(("127.0.0.1", 0))
        port = victim.getsockname()[1]
        victim.close()
        original = MayaClient.__init__

        def quick(self, address, **kwargs):
            kwargs.update(retries=1, backoff_s=0.001)
            original(self, address, **kwargs)

        monkeypatch.setattr(MayaClient, "__init__", quick)
        assert main(["--daemon", f"127.0.0.1:{port}", demo_file]) == 3
        assert "mayac:" in capsys.readouterr().err
