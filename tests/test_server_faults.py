"""The fault-injection harness and the daemon's containment of every
injected failure: no fault may terminate mayad or wedge its queue."""

import socket
import threading
import time

import pytest

from repro import faults
from repro.lalr import tables as lalr_tables
from repro.obs import log as obs_log
from repro.server import DaemonConfig, MayaClient, MayaDaemon
from repro.server import protocol
from repro.server.client import DaemonError
from repro.server.daemon import CRASHES, REPLACED

SOURCE = "class Victim { static void main() { } }"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        plan = faults.FaultPlan("")
        assert not plan.arms
        faults.check(faults.SITE_WORKER_EXECUTE)  # no-op

    def test_parse_full_spec(self):
        plan = faults.FaultPlan(
            "worker.execute:crash:times=2,cache.disk.load:corrupt,"
            "socket.read:hang:secs=0.1:after=3")
        assert len(plan.arms) == 3
        crash, corrupt, hang = plan.arms
        assert (crash.site, crash.mode, crash.times) == \
            ("worker.execute", "crash", 2)
        assert (corrupt.site, corrupt.mode) == ("cache.disk.load",
                                                "corrupt")
        assert corrupt.times is None  # unlimited
        assert (hang.secs, hang.after) == (0.1, 3)

    def test_bad_specs_are_rejected_loudly(self):
        for spec in ("worker.execute", "worker.execute:explode",
                     "worker.execute:crash:times=x",
                     "worker.execute:crash:bogus=1"):
            with pytest.raises(faults.FaultSpecError):
                faults.FaultPlan(spec)

    def test_times_counts_down(self):
        faults.configure("worker.execute:raise:times=2")
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.check(faults.SITE_WORKER_EXECUTE)
        faults.check(faults.SITE_WORKER_EXECUTE)  # armed out
        assert faults.active_plan().fired(faults.SITE_WORKER_EXECUTE) == 2

    def test_after_skips_first_hits(self):
        faults.configure("worker.execute:raise:after=2:times=1")
        faults.check(faults.SITE_WORKER_EXECUTE)
        faults.check(faults.SITE_WORKER_EXECUTE)
        with pytest.raises(faults.InjectedFault):
            faults.check(faults.SITE_WORKER_EXECUTE)
        faults.check(faults.SITE_WORKER_EXECUTE)

    def test_corrupting_only_fires_corrupt_arms(self):
        faults.configure("cache.disk.load:corrupt:times=1")
        faults.check(faults.SITE_CACHE_LOAD)  # raise-style check: no-op
        assert faults.corrupting(faults.SITE_CACHE_LOAD)
        assert not faults.corrupting(faults.SITE_CACHE_LOAD)

    def test_crash_is_not_an_exception(self):
        # Generic `except Exception` recovery must never absorb it.
        assert not issubclass(faults.WorkerCrash, Exception)
        faults.configure("worker.execute:crash:times=1")
        with pytest.raises(faults.WorkerCrash):
            faults.check(faults.SITE_WORKER_EXECUTE)

    def test_environment_seeding(self, monkeypatch):
        monkeypatch.setenv("MAYA_FAULTS", "socket.read:raise:times=1")
        plan = faults.FaultPlan.from_environment()
        assert plan.arms[0].site == "socket.read"


def _daemon(**overrides):
    config = dict(workers=2, queue_size=8, prewarm=False)
    config.update(overrides)
    return MayaDaemon(DaemonConfig(**config)).start()


class TestCrashContainment:
    def test_single_crash_is_contained_by_degraded_rerun(self):
        faults.configure("worker.execute:crash:times=1")
        server = _daemon()
        try:
            client = MayaClient(server.address, retries=0)
            contained = CRASHES.labels(outcome="contained").value
            replaced = REPLACED.value
            response = client.compile(SOURCE, "v.maya", cache=False)
            # The crash killed a worker; the request was quarantined and
            # re-run in degraded single-shot mode — and succeeded.
            assert response["status"] == "ok"
            assert response["degraded"] is True
            assert CRASHES.labels(outcome="contained").value \
                == contained + 1
            assert REPLACED.value == replaced + 1
            # The pool is whole again and fully functional.
            assert client.ping()["workers"] == 2
            assert client.compile(SOURCE, "v2.maya",
                                  cache=False)["status"] == "ok"
        finally:
            server.stop()

    def test_persistent_crash_reports_worker_crashed(self):
        faults.configure("worker.execute:crash")  # every execution
        server = _daemon()
        try:
            client = MayaClient(server.address, retries=0)
            failed = CRASHES.labels(outcome="degraded_failed").value
            response = client.compile(SOURCE, "v.maya", cache=False)
            assert response["status"] == "worker-crashed"
            assert "twice" in response["diagnostics"][0]["message"]
            assert CRASHES.labels(outcome="degraded_failed").value \
                == failed + 1
            # The daemon survived both crashes; clear the fault and the
            # same request compiles fine.
            faults.reset()
            assert client.compile(SOURCE, "v.maya",
                                  cache=False)["status"] == "ok"
        finally:
            server.stop()

    def test_crashes_never_cached(self):
        faults.configure("worker.execute:crash")
        server = _daemon()
        try:
            client = MayaClient(server.address, retries=0)
            assert client.compile(SOURCE,
                                  "c.maya")["status"] == "worker-crashed"
            faults.reset()
            # The failure was not stored: the retry really compiles.
            response = client.compile(SOURCE, "c.maya")
            assert response["status"] == "ok"
            assert "cached" not in response
        finally:
            server.stop()


class TestHangContainment:
    def test_hang_hits_deadline_and_pool_backfills(self):
        faults.configure("worker.execute:hang:secs=3:times=1")
        server = _daemon(workers=1)
        try:
            client = MayaClient(server.address, retries=0)
            replaced = REPLACED.value
            started = time.perf_counter()
            response = client.compile(SOURCE, "h.maya", cache=False,
                                      deadline_ms=400)
            elapsed = time.perf_counter() - started
            assert response["status"] == "deadline-exceeded"
            assert elapsed < 2.0  # answered at the deadline, not after 3s
            assert REPLACED.value == replaced + 1
            # The hung worker was zombied and replaced: with one
            # configured worker the service still has capacity.
            response = client.compile(SOURCE, "h2.maya", cache=False)
            assert response["status"] == "ok"
        finally:
            server.stop()


class TestCacheCorruption:
    def test_corrupt_disk_entry_is_quarantined_and_regenerated(
            self, tmp_path):
        corrupt = lalr_tables.REGISTRY.get(
            "maya_table_cache_corrupt_total")
        before = corrupt.value
        with lalr_tables.disk_cache_at(str(tmp_path)):
            server = _daemon()
            try:
                client = MayaClient(server.address, retries=0)
                # First compile populates the disk cache (the memory
                # LRU is warm from earlier tests — flush it so the
                # tables are regenerated and actually written out).
                lalr_tables.table_cache_clear()
                assert client.compile(SOURCE, "v0.maya",
                                      cache=False)["status"] == "ok"
                # Force the next compile through the disk path, with
                # the first load returning injected garbage.
                lalr_tables.table_cache_clear()
                faults.configure("cache.disk.load:corrupt:times=1")
                response = client.compile(
                    SOURCE.replace("Victim", "Victim1"), "v1.maya",
                    cache=False)
                assert response["status"] == "ok"
            finally:
                server.stop()
            assert corrupt.value == before + 1
            quarantined = [name for name in tmp_path.iterdir()
                           if name.suffix == ".quarantine"]
            assert len(quarantined) == 1

    def test_daemon_survives_cache_load_failure(self, tmp_path):
        with lalr_tables.disk_cache_at(str(tmp_path)):
            server = _daemon()
            try:
                client = MayaClient(server.address, retries=0)
                lalr_tables.table_cache_clear()
                assert client.compile(SOURCE, "v0.maya",
                                      cache=False)["status"] == "ok"
                lalr_tables.table_cache_clear()
                faults.configure("cache.disk.load:raise")
                response = client.compile(
                    SOURCE.replace("Victim", "Victim1"), "v1.maya",
                    cache=False)
                assert response["status"] == "ok"
            finally:
                server.stop()


RUN_SOURCE = """
    class Victim {
        static int helper(int n) { return n + 1; }
        static void main() { System.out.println(Victim.helper(41)); }
    }
"""


class TestCodegenCacheCorruption:
    """The workers' shared on-disk pycode codegen cache applies the
    same quarantine-on-corrupt ladder as the LALR table cache."""

    def _codegen_counts(self):
        from repro.obs.metrics import REGISTRY

        family = REGISTRY.get("maya_interp_codegen_total")
        return {labels[0]: child.value
                for labels, child in family.samples()}

    def test_corrupt_codegen_entry_is_quarantined_and_regenerated(
            self, tmp_path):
        from repro.interp import pycodegen
        from repro.obs.metrics import REGISTRY

        corrupt = REGISTRY.get("maya_interp_codegen_cache_corrupt_total")
        before = corrupt.value
        server = _daemon(codegen_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            # First run generates the plans and populates the shared
            # disk cache (each request has fresh Method objects, so
            # the disk entries are the only cross-request reuse).
            first = client.compile(RUN_SOURCE, "v0.maya",
                                   cache=False, run="Victim")
            assert first["status"] == "ok"
            assert first["run"]["output"] == ["42"]
            assert any(path.name.startswith("pycode-")
                       for path in tmp_path.iterdir())
            # Second run links from disk — with the first load
            # returning injected garbage.
            faults.configure("cache.codegen.load:corrupt:times=1")
            second = client.compile(RUN_SOURCE, "v1.maya",
                                    cache=False, run="Victim")
            assert second["status"] == "ok"
            assert second["run"]["output"] == ["42"]
        finally:
            server.stop()
            pycodegen.disable_codegen_cache()
        assert corrupt.value == before + 1
        quarantined = [path for path in tmp_path.iterdir()
                       if path.suffix == ".quarantine"]
        assert len(quarantined) == 1

    def test_workers_share_disk_cache_across_requests(self, tmp_path):
        from repro.interp import pycodegen

        server = _daemon(codegen_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            assert client.compile(RUN_SOURCE, "v0.maya", cache=False,
                                  run="Victim")["status"] == "ok"
            before = self._codegen_counts()
            assert client.compile(RUN_SOURCE, "v1.maya", cache=False,
                                  run="Victim")["status"] == "ok"
            after = self._codegen_counts()
        finally:
            server.stop()
            pycodegen.disable_codegen_cache()
        hits = after.get("disk_hit", 0) - before.get("disk_hit", 0)
        fresh = after.get("compiled", 0) - before.get("compiled", 0)
        assert hits >= 2  # main + helper linked from the shared cache
        assert fresh == 0

    def test_daemon_survives_codegen_cache_load_failure(self, tmp_path):
        from repro.interp import pycodegen

        server = _daemon(codegen_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            assert client.compile(RUN_SOURCE, "v0.maya", cache=False,
                                  run="Victim")["status"] == "ok"
            faults.configure("cache.codegen.load:raise")
            response = client.compile(RUN_SOURCE, "v1.maya",
                                      cache=False, run="Victim")
            assert response["status"] == "ok"
            assert response["run"]["output"] == ["42"]
        finally:
            server.stop()
            pycodegen.disable_codegen_cache()
        # An injected load failure is a plain miss, never a quarantine.
        assert not [path for path in tmp_path.iterdir()
                    if path.suffix == ".quarantine"]


class TestSocketFaults:
    def test_read_fault_drops_connection_not_daemon(self):
        server = _daemon()
        try:
            faults.configure("socket.read:raise:times=1")
            client = MayaClient(server.address, retries=0)
            # The daemon side hits the read fault; this request dies.
            # The fault may fire on the daemon's read (the connection
            # dies without an answer) or the client's own read.
            with pytest.raises((DaemonError, protocol.ProtocolError,
                                faults.InjectedFault, OSError)):
                client.ping()
            faults.reset()
            assert client.ping()["status"] == "ok"
        finally:
            server.stop()
            faults.reset()

    def test_write_fault_is_retried_by_client(self):
        server = _daemon()
        try:
            # One injected write failure; the client's retry succeeds.
            faults.configure("socket.write:disconnect:times=1")
            client = MayaClient(server.address, retries=3,
                                backoff_s=0.001)
            assert client.ping()["status"] == "ok"
        finally:
            server.stop()
            faults.reset()


class TestQueueNeverWedges:
    def test_mixed_fault_storm_leaves_service_healthy(self):
        """The acceptance drill in miniature: crashes and hangs land
        concurrently and the daemon still answers afterwards."""
        faults.configure("worker.execute:crash:times=2,"
                         "worker.execute:hang:secs=2:after=2:times=1")
        server = _daemon(workers=3, queue_size=32)
        try:
            client = MayaClient(server.address, retries=0)
            results = [None] * 8
            def go(i):
                results[i] = client.compile(
                    SOURCE.replace("Victim", f"Storm{i}"),
                    f"s{i}.maya", cache=False, deadline_ms=1500)
            threads = [threading.Thread(target=go, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(20)
            statuses = {r["status"] for r in results if r is not None}
            assert None not in results          # every request answered
            assert statuses <= {"ok", "deadline-exceeded",
                                "worker-crashed"}
            assert "ok" in statuses
            # Survivor check: the daemon is alive, the queue drains.
            faults.reset()
            assert client.ping()["status"] == "ok"
            assert client.compile("class Survivor { }", "sv.maya",
                                  cache=False)["status"] == "ok"
        finally:
            server.stop()


MODULE_SOURCES = {
    "lib.Util": """
        class Util { static int five() { return 5; } }
    """,
    "app.Main": """
        import lib.Util;
        class Main {
            static void main() {
                System.out.println(Util.five() + 37);
            }
        }
    """,
}


class TestModuleCacheCorruption:
    """The workers' shared incremental module cache applies the same
    quarantine-on-corrupt ladder as the table and codegen caches: a
    poisoned entry is quarantined, counted, and recompiled — never a
    failed request, never a dead daemon."""

    def test_corrupt_module_entry_is_quarantined_and_regenerated(
            self, tmp_path):
        from repro.modules import cache as module_cache

        corrupt = module_cache._CORRUPT_TOTAL
        before = corrupt.value
        server = _daemon(module_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                           cache=False, run="Main")
            assert first["status"] == "ok"
            assert first["run"]["output"] == ["42"]
            assert first["modules"]["recompiled"] == \
                ["lib.Util", "app.Main"]
            assert any(path.name.startswith("module-")
                       for path in tmp_path.iterdir())
            # Second request replays from the shared cache — with the
            # first load returning injected garbage.
            faults.configure("cache.module.load:corrupt:times=1")
            second = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                            cache=False, run="Main")
            assert second["status"] == "ok"
            assert second["run"]["output"] == ["42"]
            # Exactly the corrupted module recompiled; its sibling
            # replayed from its (healthy) entry.
            assert len(second["modules"]["recompiled"]) == 1
        finally:
            server.stop()
        assert corrupt.value == before + 1
        quarantined = [path for path in tmp_path.iterdir()
                       if path.suffix == ".quarantine"]
        assert len(quarantined) == 1

    def test_truncated_entry_on_disk_is_survived(self, tmp_path):
        from repro.modules import cache as module_cache

        corrupt = module_cache._CORRUPT_TOTAL
        before = corrupt.value
        server = _daemon(module_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            assert client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                          cache=False)["status"] == "ok"
            # Truncate a real entry mid-JSON, no fault injection: the
            # ladder must handle organic disk rot the same way.
            victim = next(path for path in tmp_path.iterdir()
                          if path.name.startswith("module-"))
            victim.write_text(victim.read_text()[:40], encoding="utf-8")
            response = client.compile_modules(MODULE_SOURCES,
                                              ["app.Main"], cache=False)
            assert response["status"] == "ok"
        finally:
            server.stop()
        assert corrupt.value == before + 1
        assert any(path.suffix == ".quarantine"
                   for path in tmp_path.iterdir())

    def test_daemon_survives_module_cache_load_failure(self, tmp_path):
        server = _daemon(module_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            assert client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                          cache=False)["status"] == "ok"
            # Every load raises: all misses, everything recompiles, the
            # request still succeeds and the daemon stays up.
            faults.configure("cache.module.load:raise")
            response = client.compile_modules(MODULE_SOURCES,
                                              ["app.Main"], cache=False,
                                              run="Main")
            assert response["status"] == "ok"
            assert response["run"]["output"] == ["42"]
            assert response["modules"]["recompiled"] == \
                ["lib.Util", "app.Main"]
            faults.reset()
            assert client.ping()["status"] == "ok"
        finally:
            server.stop()

    def test_corrupt_iface_payload_is_quarantined_and_regenerated(
            self, tmp_path):
        """``cache.module.iface``: the entry JSON parses but the class
        skeletons / deep blob are garbage.  The integrity gate must
        quarantine, count, and regenerate — never crash a request."""
        from repro.modules import cache as module_cache

        iface_corrupt = module_cache._IFACE_CORRUPT_TOTAL
        before = iface_corrupt.value
        server = _daemon(module_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                           cache=False, run="Main")
            assert first["status"] == "ok"
            assert first["run"]["output"] == ["42"]
            faults.configure("cache.module.iface:corrupt:times=1")
            second = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                            cache=False, run="Main")
            assert second["status"] == "ok"
            assert second["run"]["output"] == ["42"]
            # Exactly the module with the poisoned skeletons
            # recompiled; its sibling replayed (deep-restored) fine.
            assert len(second["modules"]["recompiled"]) == 1
            # The regenerated entry is healthy: a third request reuses
            # everything.
            third = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                           cache=False, run="Main")
            assert third["status"] == "ok"
            assert third["modules"]["reused"] == ["lib.Util", "app.Main"]
        finally:
            server.stop()
        assert iface_corrupt.value == before + 1
        assert sum(1 for path in tmp_path.iterdir()
                   if path.suffix == ".quarantine") == 1

    def test_truncated_deep_blob_on_disk_falls_back(self, tmp_path):
        """Organic rot in the deep payload (checksum intact JSON, bad
        blob bytes): the checksum gate catches it, the warm hit
        quarantines and the module recompiles — output unchanged."""
        import base64
        import json as json_mod

        from repro.modules import cache as module_cache

        iface_corrupt = module_cache._IFACE_CORRUPT_TOTAL
        before = iface_corrupt.value
        server = _daemon(module_cache_dir=str(tmp_path))
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                           cache=False, run="Main")
            assert first["status"] == "ok"
            victim = next(path for path in tmp_path.iterdir()
                          if path.name.startswith("module-"))
            payload = json_mod.loads(victim.read_text(encoding="utf-8"))
            assert payload.get("deep"), "entry should carry a deep blob"
            blob = base64.b64decode(payload["deep"])
            payload["deep"] = base64.b64encode(
                blob[: len(blob) // 2]).decode("ascii")
            victim.write_text(json_mod.dumps(payload, sort_keys=True),
                              encoding="utf-8")
            second = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                            cache=False, run="Main")
            assert second["status"] == "ok"
            assert second["run"]["output"] == ["42"]
            assert len(second["modules"]["recompiled"]) == 1
        finally:
            server.stop()
        assert iface_corrupt.value == before + 1
        assert any(path.suffix == ".quarantine"
                   for path in tmp_path.iterdir())

    def test_parallel_request_survives_iface_fault(self, tmp_path):
        """The same drill through the fan-out path: a jobs>1 request
        whose warm hit trips the iface gate still succeeds with
        byte-identical output."""
        server = _daemon(module_cache_dir=str(tmp_path), workers=4)
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                           cache=False, expand=True,
                                           jobs=4)
            assert first["status"] == "ok"
            faults.configure("cache.module.iface:corrupt:times=1")
            second = client.compile_modules(MODULE_SOURCES, ["app.Main"],
                                            cache=False, expand=True,
                                            jobs=4)
            assert second["status"] == "ok"
            assert second["expanded"] == first["expanded"]
        finally:
            server.stop()


class TestCrashReconstructionFromEventLog:
    """The observability acceptance bar: a contained worker crash must
    be reconstructible from the structured event log *alone* — the
    request_id links admission, crash, degraded re-run, and response."""

    def test_crash_trail_links_by_request_id(self):
        faults.configure("worker.execute:crash:times=1")
        obs_log.LOG.clear()
        server = _daemon()
        try:
            client = MayaClient(server.address, retries=0)
            response = client.compile(SOURCE, "v.maya", cache=False)
            assert response["status"] == "ok"
            assert response["degraded"] is True
            request_id = response["request_id"]
            assert obs_log.REQUEST_ID_RE.match(request_id)
            assert obs_log.TRACE_ID_RE.match(response["trace_id"])

            # Reconstruct from the log alone: one grep by request_id.
            records = obs_log.LOG.records(request_id=request_id)
            trail = [record["name"] for record in records]
            for expected in ("server.request.received",
                             "server.worker.crash",
                             "server.request.degraded",
                             "server.request.done"):
                assert expected in trail, f"{expected} missing in {trail}"
            # ...and in causal order: admitted, crashed, re-run, done.
            assert (trail.index("server.request.received")
                    < trail.index("server.worker.crash")
                    < trail.index("server.request.degraded")
                    < trail.index("server.request.done"))
            # Every hop carries the one trace the client minted.
            assert {record["trace_id"] for record in records} \
                == {response["trace_id"]}
            # The crash hop is leveled as an error, the degradation as
            # a warning — a leveled reader sees the incident shape.
            levels = {record["name"]: record["level"] for record in records}
            assert levels["server.worker.crash"] == "error"
            assert levels["server.request.degraded"] == "warn"
        finally:
            server.stop()

    def test_double_crash_trail_ends_in_failed_response(self):
        faults.configure("worker.execute:crash")
        obs_log.LOG.clear()
        server = _daemon()
        try:
            client = MayaClient(server.address, retries=0)
            response = client.compile(SOURCE, "v.maya", cache=False)
            assert response["status"] == "worker-crashed"
            records = obs_log.LOG.records(
                request_id=response["request_id"])
            trail = [record["name"] for record in records]
            # Both crashes land in the same request's trail, and the
            # terminal response event reports the failure status.
            assert trail.count("server.worker.crash") >= 1
            done = [record for record in records
                    if record["name"] == "server.request.done"]
            assert done and done[-1]["status"] == "worker-crashed"
        finally:
            server.stop()
            faults.reset()
