"""Property-based tests (hypothesis) on core invariants."""

import re
import string

from hypothesis import given, settings, strategies as st

from repro import trace
from repro.grammar import Assoc, Grammar, Symbol, nonterminal, terminal
from repro.hygiene import make_id
from repro.lalr import Parser, ParserContext, build_tables
from repro.lexer import scan, stream_lex
from repro.lexer.tokens import flatten
from tests.conftest import compile_source, run_main

# ---------------------------------------------------------------------------
# Lexer properties
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True) \
    .filter(lambda s: s not in {
        "abstract", "boolean", "break", "byte", "case", "catch", "char",
        "class", "const", "continue", "default", "do", "double", "else",
        "extends", "final", "finally", "float", "for", "goto", "if",
        "implements", "import", "instanceof", "int", "interface", "long",
        "native", "new", "package", "private", "protected", "public",
        "return", "short", "static", "strictfp", "super", "switch",
        "synchronized", "this", "throw", "throws", "transient", "try",
        "void", "volatile", "while", "null", "true", "false", "use",
        "syntax",
    })

simple_tokens = st.one_of(
    identifiers,
    st.integers(min_value=0, max_value=10**9).map(str),
    st.sampled_from(["+", "-", "*", "/", "==", "<=", ";", ",", ".", "="]),
)


@given(st.lists(simple_tokens, min_size=0, max_size=30))
def test_scan_token_count_stable(words):
    source = " ".join(words)
    rescanned = scan(" ".join(t.text for t in scan(source)))
    assert [t.kind for t in rescanned] == [t.kind for t in scan(source)]


@given(st.lists(simple_tokens, min_size=0, max_size=20),
       st.sampled_from(["()", "{}", "[]"]))
def test_stream_lex_flatten_roundtrip(words, delims):
    source = delims[0] + " ".join(words) + delims[1]
    tree = stream_lex(source)
    assert [t.text for t in flatten(tree)] == [t.text for t in scan(source)]


@given(st.lists(identifiers, min_size=1, max_size=10))
def test_symbol_interning(names):
    for name in names:
        symbol_name = "PropSym_" + name
        assert terminal(symbol_name) is terminal(symbol_name)


# ---------------------------------------------------------------------------
# Fresh names
# ---------------------------------------------------------------------------


@given(st.lists(identifiers, min_size=1, max_size=50))
def test_fresh_names_never_collide(bases):
    generated = [make_id(base).name for base in bases]
    assert len(set(generated)) == len(generated)
    for base, name in zip(bases, generated):
        assert name.startswith(base + "$")


# ---------------------------------------------------------------------------
# LALR arithmetic vs Python (oracle test)
# ---------------------------------------------------------------------------


def _arith_grammar():
    g = Grammar("prop-arith")
    E = nonterminal("PropE")
    g.precedence.declare(Assoc.LEFT, "+", "-")
    g.precedence.declare(Assoc.LEFT, "*")
    g.add_production(E, ["IntLit"], tag="prop_lit", internal=True,
                     action=lambda ctx, v: v[0].value)
    g.add_production(E, [E, "+", E], tag="prop_add", internal=True,
                     action=lambda ctx, v: v[0] + v[2])
    g.add_production(E, [E, "-", E], tag="prop_sub", internal=True,
                     action=lambda ctx, v: v[0] - v[2])
    g.add_production(E, [E, "*", E], tag="prop_mul", internal=True,
                     action=lambda ctx, v: v[0] * v[2])
    g.add_production(E, ["(", E, ")"], tag="prop_paren", internal=True,
                     action=lambda ctx, v: v[1])
    g.declare_start(E)
    return build_tables(g)


_ARITH_TABLES = None


@st.composite
def arith_exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return str(draw(st.integers(min_value=0, max_value=100)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_exprs(depth=depth + 1))
    right = draw(arith_exprs(depth=depth + 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


@given(arith_exprs())
@settings(max_examples=60)
def test_lalr_arithmetic_matches_python(source):
    global _ARITH_TABLES
    if _ARITH_TABLES is None:
        _ARITH_TABLES = _arith_grammar()
    parser = Parser(_ARITH_TABLES, ParserContext())
    value, _ = parser.parse("PropE", scan(source))
    assert value == eval(source)


# ---------------------------------------------------------------------------
# Interpreter arithmetic vs Java semantics (oracle: computed expectations)
# ---------------------------------------------------------------------------


@given(st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=-1000, max_value=1000).filter(lambda x: x != 0))
@settings(max_examples=25, deadline=None)
def test_java_division_semantics(a, b):
    lines = run_main(f"""
        class Demo {{
            static void main() {{
                System.out.println({a} / {b});
                System.out.println({a} % {b});
            }}
        }}
    """)
    quotient = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        quotient = -quotient
    remainder = a - quotient * b
    assert lines == [str(quotient), str(remainder)]


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=8))
@settings(max_examples=15, deadline=None)
def test_array_sum_matches_python(values):
    inits = ", ".join(str(v) for v in values)
    lines = run_main(f"""
        class Demo {{
            static void main() {{
                int[] xs = {{ {inits} }};
                int total = 0;
                for (int i = 0; i < xs.length; i++) total += xs[i];
                System.out.println(total);
            }}
        }}
    """)
    assert lines == [str(sum(values))]


# ---------------------------------------------------------------------------
# Hygiene property: user variable names never captured by foreach
# ---------------------------------------------------------------------------


@given(identifiers.filter(
    lambda s: "$" not in s and s not in ("foreach", "item", "v")))
@settings(max_examples=10, deadline=None)
def test_foreach_never_captures(name):
    lines = run_main(f"""
        import java.util.*;
        class Demo {{
            static void main() {{
                use maya.util.ForEach;
                String {name} = "outer";
                Vector v = new Vector();
                v.addElement("inner");
                v.elements().foreach(String item) {{
                    System.out.println({name});
                }}
            }}
        }}
    """, macros=True)
    assert lines == ["outer"]


# ---------------------------------------------------------------------------
# Hygiene property: fresh names never collide across nested expansions
# ---------------------------------------------------------------------------


@given(identifiers.filter(lambda s: s not in ("foreach", "r", "c")),
       identifiers.filter(lambda s: s not in ("foreach", "r", "c")))
@settings(max_examples=8, deadline=None)
def test_nested_expansions_mint_disjoint_fresh_names(outer_var, inner_var):
    """Two nested foreach expansions each rename their template binders;
    no ``name$N`` may be declared twice (capture across expansions)."""
    program = compile_source(f"""
        import java.util.*;
        class Demo {{
            static void main() {{
                use maya.util.ForEach;
                Vector rows = new Vector();
                Vector cols = new Vector();
                rows.elements().foreach(String {outer_var}) {{
                    cols.elements().foreach(String {inner_var}) {{
                        System.out.println({outer_var} + {inner_var});
                    }}
                }}
            }}
        }}
    """, macros=True)
    expanded = program.source()
    declared = re.findall(r"Enumeration (\w+\$\d+) =", expanded)
    assert len(declared) == 2, expanded
    assert len(set(declared)) == 2, f"fresh name captured: {declared}"
    # The user's own names survive unrenamed.
    assert outer_var in expanded and inner_var in expanded


# ---------------------------------------------------------------------------
# Trace well-formedness: spans nest, origin chains ground out in source
# ---------------------------------------------------------------------------


def _foreach_program(var: str) -> str:
    return f"""
        import java.util.*;
        class Demo {{
            static void main() {{
                use maya.util.ForEach;
                Vector v = new Vector();
                v.addElement("x");
                v.elements().foreach(String {var}) {{
                    System.out.println({var});
                }}
            }}
        }}
    """


def _walk_nodes(program):
    from repro.ast import nodes as n

    seen = []

    def walk(node):
        seen.append(node)
        for child in node.children():
            walk(child)

    for unit in program.units:
        walk(unit)
    for node in list(seen):
        if isinstance(node, n.LazyNode) and node.is_forced():
            walk(node.force())
    return seen


@given(identifiers.filter(lambda s: s not in ("foreach", "v")))
@settings(max_examples=8, deadline=None)
def test_trace_spans_well_formed(name):
    """Every span closes, children are properly nested inside their
    parents (ids and intervals), and the JSONL export parses."""
    import json

    tracer = trace.activate()
    try:
        program = compile_source(_foreach_program(name), macros=True)
    finally:
        trace.deactivate()
    assert tracer.stack == []
    for span in tracer.iter_spans():
        assert span.end is not None, f"span never closed: {span!r}"
        for child in span.children:
            assert child.parent_id == span.id
            assert span.start <= child.start
            assert child.end <= span.end + 1e-9
    for line in tracer.to_jsonl().splitlines():
        json.loads(line)
    # Origin chains of everything the expansion produced terminate at a
    # real source position (the use site).
    stamped = [node for node in _walk_nodes(program)
               if node.origin is not None]
    assert stamped
    for node in stamped:
        assert node.origin.root.use_site.is_known


# ---------------------------------------------------------------------------
# Unparse -> reparse round-trip on traced expansion output
# ---------------------------------------------------------------------------


@given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1,
                        max_size=6), min_size=1, max_size=3))
@settings(max_examples=8, deadline=None)
def test_expanded_output_reparses_and_stabilizes(words):
    """The traced, expanded output is valid (macro-free) input again:
    it recompiles, runs identically, and unparsing is idempotent from
    there on."""
    adds = "\n".join(f'v.addElement("{w}");' for w in words)
    source = f"""
        import java.util.*;
        class Demo {{
            static void main() {{
                use maya.util.ForEach;
                Vector v = new Vector();
                {adds}
                v.elements().foreach(String s) {{
                    System.out.println(s);
                }}
            }}
        }}
    """
    tracer = trace.activate()
    try:
        program = compile_source(source, macros=True)
    finally:
        trace.deactivate()
    assert tracer.spans_of_kind("expand")
    expanded1 = program.source()

    reparsed = compile_source(expanded1)  # plain Java now: no macros
    expanded2 = reparsed.source()
    expanded3 = compile_source(expanded2).source()
    assert expanded2 == expanded3

    from repro.interp import Interpreter

    interp = Interpreter(compile_source(expanded2))
    interp.run_static("Demo")
    assert interp.output == words
