"""Multi-file programs and incremental recompilation (repro.modules).

Covers the whole module pipeline: import scanning, graph discovery and
its located failure modes (cycle / missing module / self-import, each
snapshot-tested against ``tests/golden/``), grammar-delta export across
import edges, the incremental cache's reuse/invalidation behaviour and
its quarantine-corrupt-entries ladder, the ``mayac`` module mode, and
the daemon's multi-file compile requests.
"""

import json
import pathlib

import pytest

from repro.core.env import MayaError
from repro.diag import DiagnosticError
from repro.dispatch.mayan import MetaProgram
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.mayac import main as mayac_main
from repro.modules import (CACHE_FORMAT, MemorySources, ModuleBuilder,
                           ModuleCache, ModuleEntry, ModuleGraph,
                           module_key, options_signature, scan_imports)
from repro.obs.metrics import REGISTRY

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def make_builder(sources, cache_dir=None, options=None, macros=False):
    builder = ModuleBuilder(MemorySources(sources),
                            cache_dir=str(cache_dir) if cache_dir else None,
                            options=options)
    if macros:
        install_macro_library(builder.compiler)
    return builder


def counter(name):
    return REGISTRY.get(name).value


# ---------------------------------------------------------------------------
# Import scanning (token-level, no parse)
# ---------------------------------------------------------------------------


class TestScanImports:
    def test_single_type_and_on_demand(self):
        imports = scan_imports("""
            import geometry.Shapes;
            import java.util.*;
            class Demo { }
        """)
        assert [(i.name, i.on_demand) for i in imports] == \
            [("geometry.Shapes", False), ("java.util", True)]

    def test_imports_inside_bodies_are_not_top_level(self):
        # The stream lexer collapses {...} into one BraceTree token, so
        # an ``import``-looking sequence inside a body cannot leak out.
        imports = scan_imports("""
            import real.Dep;
            class Demo {
                void poke() { String s = "import fake.Dep;"; }
            }
        """)
        assert [i.name for i in imports] == ["real.Dep"]

    def test_locations_point_at_the_import_keyword(self):
        imports = scan_imports("import a.B;\nimport c.D;\n", "mod.maya")
        assert imports[0].location.line == 1
        assert imports[1].location.line == 2
        assert imports[1].location.column == 1


# ---------------------------------------------------------------------------
# Graph discovery and ordering
# ---------------------------------------------------------------------------


CHAIN = {
    "lib.Base": "class Base { static int base() { return 1; } }",
    "lib.Mid": """
        import lib.Base;
        class Mid { static int mid() { return Base.base() + 10; } }
    """,
    "app.Main": """
        import lib.Mid;
        class Main {
            static void main() { System.out.println(Mid.mid()); }
        }
    """,
}

DIAMOND = {
    "lib.Base": "class Base { static int base() { return 1; } }",
    "lib.Left": """
        import lib.Base;
        class Left { static int left() { return Base.base() + 10; } }
    """,
    "lib.Right": """
        import lib.Base;
        class Right { static int right() { return Base.base() + 100; } }
    """,
    "app.Main": """
        import lib.Left;
        import lib.Right;
        class Main {
            static void main() {
                System.out.println(Left.left() + Right.right());
            }
        }
    """,
}


class TestGraphDiscovery:
    def test_deps_in_import_order(self):
        graph = ModuleGraph.discover(["app.Main"], MemorySources(DIAMOND))
        assert graph.modules["app.Main"].deps == ["lib.Left", "lib.Right"]
        assert graph.modules["lib.Left"].deps == ["lib.Base"]

    def test_topological_order_is_deps_first(self):
        graph = ModuleGraph.discover(["app.Main"], MemorySources(DIAMOND))
        order = graph.order()
        assert order == ["lib.Base", "lib.Left", "lib.Right", "app.Main"]
        assert graph.order() is order  # memoized

    def test_dependents_are_transitive_importers(self):
        graph = ModuleGraph.discover(["app.Main"], MemorySources(DIAMOND))
        assert graph.dependents_of("lib.Base") == \
            ["app.Main", "lib.Left", "lib.Right"]
        assert graph.dependents_of("lib.Left") == ["app.Main"]
        assert graph.dependents_of("app.Main") == []

    def test_builtin_imports_are_not_edges(self):
        env_registry = ModuleBuilder(MemorySources({})).env.registry
        graph = ModuleGraph.discover(["app.Main"], MemorySources({
            "app.Main": """
                import java.util.Vector;
                import java.util.*;
                class Main { }
            """,
        }), registry=env_registry)
        assert graph.modules["app.Main"].deps == []

    def test_on_demand_imports_are_never_module_edges(self):
        sources = dict(CHAIN)
        sources["app.Main"] = """
            import lib.*;
            class Main { }
        """
        graph = ModuleGraph.discover(["app.Main"], MemorySources(sources))
        assert graph.modules["app.Main"].deps == []

    def test_missing_module_is_a_located_error(self):
        with pytest.raises(MayaError, match="cannot find module "
                                            "'lib.Nowhere'") as exc:
            ModuleGraph.discover(["app.Main"], MemorySources({
                "app.Main": "import lib.Nowhere;\nclass Main { }\n",
            }))
        assert exc.value.location.line == 1

    def test_self_import_rejected(self):
        with pytest.raises(MayaError, match="imports itself"):
            ModuleGraph.discover(["app.Main"], MemorySources({
                "app.Main": "import app.Main;\nclass Main { }\n",
            }))

    def test_import_cycle_names_the_whole_cycle(self):
        with pytest.raises(MayaError, match="import cycle: app.Main -> "
                                            "lib.Tools -> app.Main"):
            ModuleGraph.discover(["app.Main"], MemorySources({
                "app.Main": "import lib.Tools;\nclass Main { }\n",
                "lib.Tools": "import app.Main;\nclass Tools { }\n",
            }))


# ---------------------------------------------------------------------------
# Clean and incremental builds
# ---------------------------------------------------------------------------


class TestIncrementalBuild:
    def test_clean_build_compiles_everything_and_runs(self, tmp_path):
        result = make_builder(CHAIN, tmp_path).build(["app.Main"],
                                                     need_bodies=True)
        assert result.recompiled == result.order
        assert result.reused == []
        interp = Interpreter(result.program)
        interp.run_static("Main")
        assert interp.output == ["11"]

    def test_warm_rebuild_reuses_everything_byte_identically(self, tmp_path):
        first = make_builder(CHAIN, tmp_path).build(["app.Main"])
        second = make_builder(CHAIN, tmp_path).build(["app.Main"])
        assert second.recompiled == []
        assert second.reused == second.order
        assert second.expanded() == first.expanded()

    def test_warm_rebuild_with_bodies_still_runs(self, tmp_path):
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        result = make_builder(CHAIN, tmp_path).build(["app.Main"],
                                                     need_bodies=True)
        assert result.recompiled == []
        interp = Interpreter(result.program)
        interp.run_static("Main")
        assert interp.output == ["11"]

    def test_root_edit_recompiles_only_the_root(self, tmp_path):
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        edited = dict(CHAIN)
        edited["app.Main"] = CHAIN["app.Main"].replace(
            "Mid.mid()", "Mid.mid() + 1000")
        result = make_builder(edited, tmp_path).build(["app.Main"])
        assert result.recompiled == ["app.Main"]
        assert result.reused == ["lib.Base", "lib.Mid"]

    def test_base_edit_invalidates_the_whole_downstream_cone(self, tmp_path):
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        edited = dict(CHAIN)
        edited["lib.Base"] = edited["lib.Base"].replace("return 1",
                                                        "return 2")
        result = make_builder(edited, tmp_path).build(["app.Main"],
                                                      need_bodies=True)
        assert result.recompiled == ["lib.Base", "lib.Mid", "app.Main"]
        interp = Interpreter(result.program)
        interp.run_static("Main")
        assert interp.output == ["12"]

    def test_sibling_branches_are_not_invalidated(self, tmp_path):
        make_builder(DIAMOND, tmp_path).build(["app.Main"])
        edited = dict(DIAMOND)
        edited["lib.Left"] = edited["lib.Left"].replace("+ 10", "+ 20")
        result = make_builder(edited, tmp_path).build(["app.Main"])
        assert result.recompiled == ["lib.Left", "app.Main"]
        assert result.reused == ["lib.Base", "lib.Right"]

    def test_incremental_equals_clean_after_edit(self, tmp_path):
        make_builder(DIAMOND, tmp_path).build(["app.Main"])
        edited = dict(DIAMOND)
        edited["lib.Right"] = edited["lib.Right"].replace("+ 100", "+ 200")
        incremental = make_builder(edited, tmp_path).build(["app.Main"])
        clean = make_builder(edited).build(["app.Main"])
        assert incremental.expanded() == clean.expanded()

    def test_option_change_invalidates_the_cache(self, tmp_path):
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        result = make_builder(CHAIN, tmp_path,
                              options={"provenance": True}) \
            .build(["app.Main"])
        assert result.recompiled == result.order

    def test_build_counters_track_outcomes(self, tmp_path):
        compiled = counter("maya_modules_compiled_total")
        reused = counter("maya_modules_reused_total")
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        assert counter("maya_modules_compiled_total") == compiled + 3
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        assert counter("maya_modules_reused_total") == reused + 3


# ---------------------------------------------------------------------------
# Grammar deltas across import edges
# ---------------------------------------------------------------------------


FOREACH_LIB = {
    "lib.Loops": """
        use maya.util.ForEach;
        class Loops {
            static void dump(String[] items) {
                items.foreach(String s) { System.out.println(s); }
            }
        }
    """,
    "app.Main": """
        import lib.Loops;
        class Main {
            static void main() {
                String[] data = new String[2];
                data[0] = "alpha"; data[1] = "beta";
                data.foreach(String s) { Loops.dump(data); }
            }
        }
    """,
}


class TestExportsAcrossEdges:
    def test_imported_mayan_reaches_the_importer(self, tmp_path):
        # app.Main never says ``use`` — the foreach syntax arrives over
        # the import edge via lib.Loops's export list.
        result = make_builder(FOREACH_LIB, tmp_path, macros=True) \
            .build(["app.Main"], need_bodies=True)
        interp = Interpreter(result.program)
        interp.run_static("Main")
        assert interp.output == ["alpha", "beta"] * 2

    def test_exports_accumulate_transitively(self, tmp_path):
        sources = dict(FOREACH_LIB)
        sources["app.Main"] = "import lib.Loops;\nclass Main { }\n"
        sources["top.App"] = "import app.Main;\nclass App { }\n"
        result = make_builder(sources, tmp_path, macros=True) \
            .build(["top.App"])
        assert result.builds["lib.Loops"].exports == ["maya.util.ForEach"]
        assert result.builds["app.Main"].exports == ["maya.util.ForEach"]
        assert result.builds["top.App"].exports == ["maya.util.ForEach"]

    def test_extension_does_not_leak_to_non_importers(self, tmp_path):
        # A sibling module that does NOT import lib.Loops must not see
        # the foreach production: per-module grammar copies isolate it.
        sources = dict(FOREACH_LIB)
        sources["app.Main"] = """
            class Main {
                static void main() {
                    String[] data = new String[1];
                    data.foreach(String s) { System.out.println(s); }
                }
            }
        """
        with pytest.raises(DiagnosticError):
            make_builder(sources, tmp_path, macros=True) \
                .build(["lib.Loops", "app.Main"])

    def test_reused_module_still_exports_its_delta(self, tmp_path):
        # lib.Loops replays from the cache; its export list must still
        # reach a recompiling importer.
        make_builder(FOREACH_LIB, tmp_path, macros=True).build(["app.Main"])
        edited = dict(FOREACH_LIB)
        edited["app.Main"] = edited["app.Main"].replace("alpha", "gamma")
        result = make_builder(edited, tmp_path, macros=True) \
            .build(["app.Main"], need_bodies=True)
        assert result.recompiled == ["app.Main"]
        interp = Interpreter(result.program)
        interp.run_static("Main")
        assert interp.output == ["gamma", "beta"] * 2


# ---------------------------------------------------------------------------
# The cache itself: keys, entries, and the quarantine ladder
# ---------------------------------------------------------------------------


class TestModuleCache:
    def test_key_covers_the_transitive_cone(self):
        sig = options_signature({})
        base = module_key("lib.Base", "class Base { }", sig, [])
        edited = module_key("lib.Base", "class Base { int x; }", sig, [])
        assert base != edited
        downstream = module_key("app.Main", "import lib.Base;", sig,
                                [("lib.Base", base)])
        downstream2 = module_key("app.Main", "import lib.Base;", sig,
                                 [("lib.Base", edited)])
        assert downstream != downstream2  # dep edit flows downstream

    def test_options_signature_ignores_irrelevant_keys(self):
        assert options_signature({"run": "Main", "expand": True}) == \
            options_signature({})
        assert options_signature({"multijava": True}) != \
            options_signature({})

    def test_entry_roundtrip(self):
        entry = ModuleEntry("lib.Base", "k" * 64, "class Base { }",
                            [], ["maya.util.ForEach"], [])
        back = ModuleEntry.from_payload(entry.payload())
        assert back.payload() == entry.payload()
        assert back.payload()["format"] == CACHE_FORMAT

    def test_disabled_cache_is_falsy_and_inert(self):
        cache = ModuleCache(None)
        assert not cache
        assert cache.load("lib.Base", "k") is None
        cache.store(ModuleEntry("lib.Base", "k", "", [], [], []))

    def test_stale_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        corrupt = counter("maya_module_cache_corrupt_total")
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        edited = dict(CHAIN)
        edited["lib.Base"] = edited["lib.Base"] + "\n// edited\n"
        make_builder(edited, tmp_path).build(["app.Main"])
        assert counter("maya_module_cache_corrupt_total") == corrupt
        assert not list(tmp_path.glob("*.quarantine"))

    def test_corrupt_entry_is_quarantined_counted_and_rebuilt(
            self, tmp_path):
        corrupt = counter("maya_module_cache_corrupt_total")
        make_builder(CHAIN, tmp_path).build(["app.Main"])
        victim = next(p for p in tmp_path.iterdir()
                      if "lib.Base" in p.name)
        victim.write_text("{ not json", encoding="utf-8")
        result = make_builder(CHAIN, tmp_path).build(["app.Main"])
        # lib.Base misses (corrupt) which invalidates nothing else —
        # downstream keys never depended on the cache's health.
        assert result.recompiled == ["lib.Base"]
        assert counter("maya_module_cache_corrupt_total") == corrupt + 1
        assert len(list(tmp_path.glob("*.quarantine"))) == 1
        # The regenerated entry is good again.
        third = make_builder(CHAIN, tmp_path).build(["app.Main"])
        assert third.recompiled == []

    def test_wrong_shape_payload_is_corrupt(self, tmp_path):
        corrupt = counter("maya_module_cache_corrupt_total")
        cache = ModuleCache(str(tmp_path))
        key = "k" * 64
        path = cache._path("lib.Base")
        path_obj = pathlib.Path(path)
        path_obj.write_text(json.dumps({
            "format": CACHE_FORMAT, "name": "lib.Base", "key": key,
            "expanded": 42, "iface": [], "exports": [], "deps": [],
        }), encoding="utf-8")
        assert cache.load("lib.Base", key) is None
        assert counter("maya_module_cache_corrupt_total") == corrupt + 1


# ---------------------------------------------------------------------------
# Golden caret diagnostics for the module-graph failure modes
# ---------------------------------------------------------------------------


class _SyntaxExtension(MetaProgram):
    """A metaprogram adding one Statement production — two of these
    with overlapping patterns make the combined grammar non-LALR."""

    def __init__(self, pattern):
        super().__init__()
        self.pattern = pattern

    def run(self, env):
        env.add_production("Statement", self.pattern)


def _conflict_builder():
    builder = make_builder({
        "ext.A": "use ext.Gadget;\nclass A { }\n",
        "ext.B": "use ext.Widget;\nclass B { }\n",
        "app.Main": "import ext.A;\nimport ext.B;\nclass Main { }\n",
    })
    builder.env.provide("ext.Gadget", _SyntaxExtension("gadget Statement"))
    builder.env.provide("ext.Widget",
                        _SyntaxExtension("gadget gadget Statement"))
    return builder


def _cycle_builder():
    return make_builder({
        "app.Main": "import lib.Tools;\nclass Main { }\n",
        "lib.Tools": "import lib.Extra;\nclass Tools { }\n",
        "lib.Extra": "import app.Main;\nclass Extra { }\n",
    })


def _missing_builder():
    return make_builder({
        "app.Main": "import lib.Nowhere;\nclass Main { }\n",
    })


DIAGNOSTIC_CASES = {
    "module_cycle": _cycle_builder,
    "module_missing": _missing_builder,
    "module_conflict": _conflict_builder,
}


class TestGoldenModuleDiagnostics:
    """Each failure mode renders a caret diagnostic at the ``import``
    site; the rendering is snapshot-tested byte-for-byte."""

    @pytest.mark.parametrize("name", sorted(DIAGNOSTIC_CASES))
    def test_matches_golden(self, name, request):
        builder = DIAGNOSTIC_CASES[name]()
        with pytest.raises(MayaError) as exc:
            builder.build(["app.Main"])
        rendered = builder.env.diag.render(exc.value.diagnostic) + "\n"
        golden = GOLDEN_DIR / f"{name}.txt"
        if request.config.getoption("--update-goldens"):
            golden.write_text(rendered, encoding="utf-8")
            pytest.skip(f"updated {golden.name}")
        assert golden.exists(), \
            f"golden {golden.name} missing; run with --update-goldens"
        assert rendered == golden.read_text(encoding="utf-8")

    def test_conflict_blames_the_second_import(self):
        builder = _conflict_builder()
        with pytest.raises(MayaError) as exc:
            builder.build(["app.Main"])
        assert "importing module 'ext.B' breaks the grammar" \
            in str(exc.value)
        assert exc.value.location.line == 2  # the ``import ext.B;`` line

    def test_cycle_blames_the_closing_edge(self):
        with pytest.raises(MayaError) as exc:
            _cycle_builder().build(["app.Main"])
        span = exc.value.diagnostic.span
        assert span.filename == "lib/Extra.maya"


# ---------------------------------------------------------------------------
# mayac module mode
# ---------------------------------------------------------------------------


def _write_project(root, sources):
    for name, text in sources.items():
        path = root.joinpath(*name.split(".")).with_suffix(".maya")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


class TestMayacModuleMode:
    def test_build_run_and_report(self, tmp_path, capsys):
        project = _write_project(tmp_path / "src", CHAIN)
        cache = tmp_path / "cache"
        argv = ["--module-path", str(project), "--module-cache",
                str(cache), "--module-report", "--run", "Main",
                str(project / "app" / "Main.maya")]
        assert mayac_main(argv) == 0
        captured = capsys.readouterr()
        assert "11" in captured.out
        assert "3 total, 3 recompiled, 0 reused" in captured.err

        # Second invocation: everything replays from the cache.
        assert mayac_main(argv) == 0
        captured = capsys.readouterr()
        assert "11" in captured.out
        assert "3 total, 0 recompiled, 3 reused" in captured.err

    def test_expand_prints_modules_in_topo_order(self, tmp_path, capsys):
        project = _write_project(tmp_path / "src", CHAIN)
        assert mayac_main(["--module-path", str(project), "--expand",
                           str(project / "app" / "Main.maya")]) == 0
        out = capsys.readouterr().out
        assert out.index("// module lib.Base") \
            < out.index("// module lib.Mid") \
            < out.index("// module app.Main")

    def test_multiple_files_enable_module_mode(self, tmp_path, capsys):
        project = _write_project(tmp_path / "src", {
            "Util": "class Util { static int five() { return 5; } }",
            "Main": """
                import Util;
                class Main {
                    static void main() {
                        System.out.println(Util.five() + 37);
                    }
                }
            """,
        })
        assert mayac_main([str(project / "Main.maya"),
                           str(project / "Util.maya"),
                           "--module-path", str(project),
                           "--run", "Main"]) == 0
        assert "42" in capsys.readouterr().out

    def test_module_errors_render_as_diagnostics(self, tmp_path, capsys):
        project = _write_project(tmp_path / "src", {
            "app.Main": "import lib.Nowhere;\nclass Main { }\n",
        })
        assert mayac_main(["--module-path", str(project),
                           str(project / "app" / "Main.maya")]) == 1
        err = capsys.readouterr().err
        assert "cannot find module 'lib.Nowhere'" in err
        assert "^" in err  # caret rendering, not a traceback


# ---------------------------------------------------------------------------
# Daemon multi-file requests
# ---------------------------------------------------------------------------


class TestDaemonModules:
    def _daemon(self, tmp_path):
        from repro.server import DaemonConfig, MayaDaemon

        return MayaDaemon(DaemonConfig(
            workers=2, queue_size=8, prewarm=False,
            module_cache_dir=str(tmp_path / "modules"))).start()

    def test_compile_run_and_reuse(self, tmp_path):
        from repro.server import MayaClient

        server = self._daemon(tmp_path)
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(CHAIN, ["app.Main"],
                                           expand=True, run="Main",
                                           cache=False)
            assert first["status"] == "ok"
            assert first["run"]["output"] == ["11"]
            assert first["modules"]["recompiled"] == \
                ["lib.Base", "lib.Mid", "app.Main"]
            second = client.compile_modules(CHAIN, ["app.Main"],
                                            expand=True, cache=False)
            assert second["status"] == "ok"
            assert second["modules"]["recompiled"] == []
            assert second["modules"]["reused"] == \
                ["lib.Base", "lib.Mid", "app.Main"]
            assert second["expanded"] == first["expanded"]
        finally:
            server.stop()

    def test_module_error_is_a_compile_error_response(self, tmp_path):
        from repro.server import MayaClient

        server = self._daemon(tmp_path)
        try:
            client = MayaClient(server.address, retries=0)
            response = client.compile_modules(
                {"app.Main": "import lib.Nowhere;\nclass Main { }\n"},
                ["app.Main"], cache=False)
            assert response["status"] == "compile-error"
            rendered = "\n".join(d.get("rendered") or ""
                                 for d in response["diagnostics"])
            assert "cannot find module 'lib.Nowhere'" in rendered
        finally:
            server.stop()

    def test_malformed_module_requests_are_bad_requests(self, tmp_path):
        from repro.server import MayaClient

        server = self._daemon(tmp_path)
        try:
            client = MayaClient(server.address, retries=0)
            no_roots = client.request("compile", sources=dict(CHAIN),
                                      roots=[], options={})
            assert no_roots["status"] == "bad-request"
            bad_sources = client.request("compile", sources={},
                                         roots=["app.Main"], options={})
            assert bad_sources["status"] == "bad-request"
        finally:
            server.stop()
