"""The resilience layer: multi-error recovery, caret rendering, and
the expansion/interpreter guard rails."""

import pytest

from repro.diag import (
    CompileFailed,
    Diagnostic,
    DiagnosticEngine,
    SourceSpan,
)
from repro.dispatch import ExpansionTooDeepError, Mayan, MayanExpansionError
from repro.interp import Interpreter, JavaStackOverflow, StepLimitExceeded
from repro.patterns import Template
from tests.conftest import compile_source, make_compiler


THREE_BAD_METHODS = """class Demo {
    int a() { int x = true; return x; }
    int b() { return "nope"; }
    void c() { nosuch(); }
}"""


class TestMultiErrorCollection:
    def test_three_type_errors_three_diagnostics(self):
        """The acceptance case: one compile reports every bad method."""
        with pytest.raises(CompileFailed) as exc:
            compile_source(THREE_BAD_METHODS)
        failed = exc.value
        errors = [d for d in failed.diagnostics if d.severity == "error"]
        assert len(errors) == 3
        lines = sorted(d.span.line for d in errors)
        assert lines == [2, 3, 4]
        assert all(d.phase == "check" for d in errors)

    def test_compile_failed_message_lists_spans(self):
        with pytest.raises(CompileFailed) as exc:
            compile_source(THREE_BAD_METHODS)
        message = str(exc.value)
        assert "compilation failed with 3 errors" in message
        assert "<string>:2:" in message

    def test_single_error_reraises_original_type(self):
        """One error keeps the precise phase exception (compat)."""
        from repro.typecheck import CheckError

        with pytest.raises(CheckError):
            compile_source("class A { void f() { nosuch(); } }")

    def test_two_bad_declarations_both_reported(self):
        """Panic-mode recovery resumes at the next declaration."""
        with pytest.raises(CompileFailed) as exc:
            compile_source("""class A extends { void f() { } }
class B implements { }""")
        errors = [d for d in exc.value.diagnostics if d.severity == "error"]
        assert len(errors) == 2
        assert all(d.phase == "parse" for d in errors)

    def test_recovery_continues_past_bad_statement(self):
        """A bad statement poisons its expression, not its siblings."""
        with pytest.raises(CompileFailed) as exc:
            compile_source("""class A {
    void f() {
        int x = nosuch();
        boolean b = alsonosuch();
    }
}""")
        errors = [d for d in exc.value.diagnostics if d.severity == "error"]
        assert len(errors) == 2

    def test_max_errors_budget_caps_collection(self):
        compiler = make_compiler()
        compiler.env.diag.max_errors = 2
        with pytest.raises(CompileFailed) as exc:
            compiler.compile(THREE_BAD_METHODS)
        errors = [d for d in exc.value.diagnostics if d.severity == "error"]
        assert len(errors) == 2

    def test_good_class_after_failed_compile_still_works(self):
        """A failed compile leaves the compiler usable (no poisoned
        state leaks into the next unit)."""
        compiler = make_compiler()
        with pytest.raises(CompileFailed):
            compiler.compile(THREE_BAD_METHODS, "bad.maya")
        program = compiler.compile(
            "class Ok { static int f() { return 3; } }", "ok.maya")
        interp = Interpreter(program)
        assert interp.run_static("Ok", "f") == 3


class TestRendering:
    def test_caret_points_at_column(self):
        engine = DiagnosticEngine()
        engine.add_source("demo.maya", "int x = true;\n")
        diag = Diagnostic("cannot initialize int x with boolean",
                          phase="check",
                          span=SourceSpan("demo.maya", 1, 9, 4))
        rendered = engine.render(diag)
        assert rendered.splitlines() == [
            "demo.maya:1:9: [check] error: "
            "cannot initialize int x with boolean",
            "  | int x = true;",
            "  |         ^~~~",
        ]

    def test_notes_and_backtrace_render(self):
        diag = Diagnostic("boom", phase="expand",
                          notes=["while compiling A.f"],
                          backtrace=["ext.M at demo.maya:1:1"])
        rendered = diag.render()
        assert "  note: while compiling A.f" in rendered
        assert "  in expansion of ext.M at demo.maya:1:1" in rendered

    def test_compile_failed_render_has_carets(self):
        with pytest.raises(CompileFailed) as exc:
            compile_source(THREE_BAD_METHODS)
        rendered = exc.value.render()
        assert "int x = true;" in rendered
        assert "^" in rendered


class _SelfRecursive(Mayan):
    result = "Statement"
    pattern = "boom Statement body"
    TEMPLATE = Template("Statement", "boom $b", b="Statement")

    def run(self, env):
        env.add_production("Statement", "boom Statement")
        super().run(env)

    def expand(self, ctx, body):
        return ctx.instantiate(self.TEMPLATE, b=body)


class _Buggy(Mayan):
    result = "Statement"
    pattern = "crash Statement body"

    def run(self, env):
        env.add_production("Statement", "crash Statement")
        super().run(env)

    def expand(self, ctx, body):
        return 1 // 0


BOMB_SOURCE = """class Demo {
    static void main() {
        use ext.Bomb;
        boom System.out.println("x");
    }
}"""


class TestExpansionGuardRails:
    def test_self_recursive_mayan_trips_fuel(self):
        """The acceptance case: a located 'expansion too deep' error
        showing the Mayan chain — never a Python RecursionError."""
        compiler = make_compiler()
        compiler.provide("ext.Bomb", _SelfRecursive())
        with pytest.raises(ExpansionTooDeepError) as exc:
            compiler.compile(BOMB_SOURCE, "bomb.maya")
        diag = exc.value.diagnostic
        assert "expansion too deep" in diag.message
        assert diag.span.filename == "bomb.maya"
        assert diag.span.line == 4
        assert any("ext.Bomb" in entry for entry in diag.backtrace)
        rendered = compiler.env.diag.render(diag)
        assert "in expansion of ext.Bomb" in rendered

    def test_fuel_flag_lowers_depth_budget(self):
        compiler = make_compiler()
        compiler.env.diag.max_expansion_depth = 4
        compiler.provide("ext.Bomb", _SelfRecursive())
        with pytest.raises(ExpansionTooDeepError) as exc:
            compiler.compile(BOMB_SOURCE, "bomb.maya")
        assert "fuel budget of 4" in str(exc.value)

    def test_python_error_in_mayan_is_located_diagnostic(self):
        compiler = make_compiler()
        compiler.provide("ext.Crash", _Buggy())
        with pytest.raises(MayanExpansionError) as exc:
            compiler.compile("""class Demo {
    static void main() {
        use ext.Crash;
        crash System.out.println("x");
    }
}""", "crash.maya")
        diag = exc.value.diagnostic
        assert "ext.Crash" in diag.message
        assert "ZeroDivisionError" in diag.message
        assert diag.span.filename == "crash.maya"
        assert diag.span.line == 4
        assert isinstance(exc.value.__cause__, ZeroDivisionError)


class TestInterpreterBudgets:
    RECURSIVE = """class Demo {
    static int loop(int n) { return loop(n + 1); }
    static void spin() { while (true) { int x = 1; } }
}"""

    def test_runaway_recursion_raises_java_stack_overflow(self):
        program = compile_source(self.RECURSIVE)
        interp = Interpreter(program)
        with pytest.raises(JavaStackOverflow) as exc:
            interp.run_static("Demo", "loop", [0])
        assert "call depth" in str(exc.value)

    def test_depth_budget_configurable(self):
        program = compile_source(self.RECURSIVE)
        interp = Interpreter(program, max_call_depth=10)
        with pytest.raises(JavaStackOverflow) as exc:
            interp.run_static("Demo", "loop", [0])
        assert "10" in str(exc.value)

    def test_infinite_loop_trips_step_budget(self):
        program = compile_source(self.RECURSIVE)
        interp = Interpreter(program, max_steps=5000)
        with pytest.raises(StepLimitExceeded):
            interp.run_static("Demo", "spin")

    def test_no_step_budget_by_default(self):
        program = compile_source("""class Demo {
    static int count() {
        int total = 0;
        for (int i = 0; i < 100; i++) total = total + 1;
        return total;
    }
}""")
        interp = Interpreter(program)
        assert interp.run_static("Demo", "count") == 100

    def test_legitimate_recursion_within_budget(self):
        program = compile_source("""class Demo {
    static int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
}""")
        interp = Interpreter(program)
        assert interp.run_static("Demo", "fib", [12]) == 144
