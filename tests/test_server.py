"""The mayad compile service: protocol, isolation, admission control,
deadlines, the artifact cache, and the client's retry discipline."""

import json
import random
import socket
import struct
import threading
import time

import pytest

from repro import faults
from repro.core.env import CompileEnv
from repro.diag import DeadlineExceededError
from repro.server import DaemonConfig, MayaClient, MayaDaemon, parse_address
from repro.server import protocol
from repro.server.client import DaemonError
from repro.server.daemon import REQUESTS, SHED, _Request
from repro.server.state import EpochCache, artifact_key

FOREACH_TEMPLATE = """
    import java.util.*;
    class Demo%s {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.addElement("srv");
            v.elements().foreach(String s) { System.out.println(s); }
        }
    }
"""


@pytest.fixture
def daemon():
    server = MayaDaemon(DaemonConfig(workers=2, queue_size=8,
                                     prewarm=False)).start()
    yield server
    server.stop()
    faults.reset()


@pytest.fixture
def client(daemon):
    return MayaClient(daemon.address, retries=2,
                      rng=random.Random(7))


class TestProtocol:
    def test_frame_roundtrip(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, {"op": "ping", "text": "s\nd"})
            assert protocol.recv_frame(right) == {"op": "ping",
                                                  "text": "s\nd"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert protocol.recv_frame(right) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", 100) + b"short")
            left.close()
            with pytest.raises(protocol.ProtocolError,
                               match="mid-frame"):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected_before_buffering(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="exceeds"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_bad_json_raises(self):
        left, right = socket.socketpair()
        try:
            payload = b"not json"
            left.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(protocol.ProtocolError, match="payload"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7463") == ("127.0.0.1", 7463)
        assert parse_address(":9") == ("127.0.0.1", 9)
        assert parse_address("/tmp/mayad.sock") == "/tmp/mayad.sock"
        with pytest.raises(ValueError):
            parse_address("host:notaport")


class TestCompileService:
    def test_compile_and_expand(self, client):
        response = client.compile(FOREACH_TEMPLATE % "A", "a.maya",
                                  expand=True)
        assert response["status"] == "ok"
        assert "hasMoreElements" in response["expanded"]
        assert response["classes"] == ["DemoA"]
        assert response["stats"]["total_ms"] > 0

    def test_compile_error_diagnostics_are_structured(self, client):
        response = client.compile(
            'class Bad { int f() { return "no"; } }', "bad.maya")
        assert response["status"] == "compile-error"
        [diag] = response["diagnostics"]
        assert diag["severity"] == "error"
        assert diag["phase"] in ("parse", "check", "expand")
        assert "bad.maya" in diag["rendered"]
        assert "^" in diag["rendered"]  # caret rendering survives the wire

    def test_sessions_are_isolated(self, client):
        # Session 1 defines a class and extends its grammar via `use`;
        # neither may leak into session 2's environment.
        first = client.compile(FOREACH_TEMPLATE % "Iso", "iso.maya")
        assert first["status"] == "ok"
        leaked_type = client.compile(
            "class Other { DemoIso d; }", "other.maya")
        assert leaked_type["status"] == "compile-error"
        leaked_grammar = client.compile("""
            import java.util.*;
            class NoUse {
                static void main() {
                    Vector v = new Vector();
                    v.elements().foreach(String s) { }
                }
            }
        """, "nouse.maya")
        assert leaked_grammar["status"] == "compile-error"

    def test_artifact_cache_hit(self, client):
        source = FOREACH_TEMPLATE % "Cache"
        first = client.compile(source, "c.maya", expand=True)
        assert first["status"] == "ok" and "cached" not in first
        second = client.compile(source, "c.maya", expand=True)
        assert second["status"] == "ok"
        assert second["cached"] is True
        assert second["expanded"] == first["expanded"]

    def test_artifact_cache_respects_options(self, client):
        source = FOREACH_TEMPLATE % "Opt"
        with_expand = client.compile(source, "o.maya", expand=True)
        without = client.compile(source, "o.maya")
        assert with_expand["status"] == "ok"
        assert without["status"] == "ok"
        assert "cached" not in without  # different options, different key

    def test_run_option_interprets_in_worker(self, client):
        response = client.compile("""
            class Calc { static int twice(int n) { return n * 2; } }
            class Demo {
                static void main() {
                    System.out.println(Calc.twice(21));
                }
            }
        """, "run.maya", cache=False, run="Demo")
        assert response["status"] == "ok"
        run = response["run"]
        assert run["class"] == "Demo"
        assert run["output"] == ["42"]
        assert run["run_ms"] >= 0
        assert "error" not in run

    def test_run_option_reports_java_throw(self, client):
        response = client.compile("""
            class Demo {
                static void main() { throw new RuntimeException("sad"); }
            }
        """, "throw.maya", cache=False, run="Demo")
        assert response["status"] == "ok"  # the *compile* succeeded
        run = response["run"]
        assert run["thrown"] == "java.lang.RuntimeException"
        assert "sad" in run["error"]

    def test_concurrent_compiles(self, client):
        results = [None] * 12
        def go(i):
            results[i] = client.compile(FOREACH_TEMPLATE % f"C{i}",
                                        f"c{i}.maya", cache=False)
        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert all(r is not None and r["status"] == "ok"
                   for r in results)

    def test_ping_and_metrics(self, client):
        ping = client.ping()
        assert ping["status"] == "ok"
        assert ping["workers"] == 2
        metrics = client.metrics()
        names = {f["name"] for f in metrics["families"]}
        assert "maya_server_requests_total" in names
        assert "maya_server_request_ms" in names

    def test_bad_requests_are_answered(self, client):
        assert client.request("frobnicate")["status"] == "bad-request"
        assert client.request("compile")["status"] == "bad-request"
        response = client.request("compile", source="class A { }",
                                  options=["not", "a", "dict"])
        assert response["status"] == "bad-request"

    def test_unix_socket(self, tmp_path):
        path = str(tmp_path / "mayad.sock")
        server = MayaDaemon(DaemonConfig(socket_path=path,
                                         prewarm=False)).start()
        try:
            response = MayaClient(path).compile("class U { }", "u.maya")
            assert response["status"] == "ok"
        finally:
            server.stop()

    def test_malformed_frame_keeps_daemon_serving(self, daemon, client):
        raw = socket.create_connection(
            parse_address(daemon.address), timeout=5)
        try:
            raw.sendall(b"\xff\xff\xff\xff garbage")
            # The daemon answers bad-request (or just drops us) and must
            # keep serving other clients.
            raw.settimeout(2)
            try:
                raw.recv(1 << 16)
            except OSError:
                pass
        finally:
            raw.close()
        assert client.ping()["status"] == "ok"

    def test_client_disconnect_mid_request_tolerated(self, daemon,
                                                     client):
        raw = socket.create_connection(
            parse_address(daemon.address), timeout=5)
        payload = json.dumps({
            "op": "compile", "source": FOREACH_TEMPLATE % "Gone",
            "filename": "gone.maya", "options": {"cache": False},
        }).encode()
        raw.sendall(struct.pack("!I", len(payload)) + payload)
        raw.close()  # vanish before the answer
        time.sleep(0.2)
        assert client.ping()["status"] == "ok"
        assert client.compile("class Still { }",
                              "still.maya")["status"] == "ok"


class TestAdmissionControl:
    def test_load_shedding_is_fast_and_structured(self):
        faults.configure("worker.execute:hang:secs=1.5:times=1")
        server = MayaDaemon(DaemonConfig(workers=1, queue_size=1,
                                         prewarm=False)).start()
        try:
            client = MayaClient(server.address, retries=0)
            shed_before = SHED.value
            slow = threading.Thread(
                target=client.compile,
                args=("class Slow { }", "slow.maya"),
                kwargs={"cache": False, "deadline_ms": 4000})
            slow.start()
            time.sleep(0.3)  # the hang occupies the only worker
            queued = threading.Thread(
                target=client.compile,
                args=("class Queued { }", "queued.maya"),
                kwargs={"cache": False, "deadline_ms": 4000})
            queued.start()
            time.sleep(0.1)
            started = time.perf_counter()
            response = client.compile("class Shed { }", "shed.maya",
                                      cache=False)
            elapsed = time.perf_counter() - started
            assert response["status"] == "overloaded"
            assert response["retry_after_ms"] > 0
            assert response["diagnostics"][0]["phase"] == "server"
            assert elapsed < 0.5  # shed immediately, not queued
            assert SHED.value == shed_before + 1
            slow.join(10)
            queued.join(10)
        finally:
            server.stop()
            faults.reset()

    def test_stop_is_not_wedged_by_a_full_queue(self):
        # Graceful stop must never block putting its sentinels: with
        # the queue full behind a hung worker (the fault-drill shape),
        # a blocking put would wedge stop() before its join timeout.
        faults.configure("worker.execute:hang:secs=30:times=1")
        server = MayaDaemon(DaemonConfig(workers=1, queue_size=1,
                                         prewarm=False)).start()
        results = {}

        def fire(name):
            client = MayaClient(server.address, retries=0)
            results[name] = client.compile(
                "class Wedge { }", f"{name}.maya",
                cache=False, deadline_ms=2000)

        hung = threading.Thread(target=fire, args=("hung",))
        hung.start()
        time.sleep(0.3)  # the hang occupies the only worker
        queued = threading.Thread(target=fire, args=("queued",))
        queued.start()
        time.sleep(0.2)  # ...and this request fills the 1-deep queue
        try:
            started = time.perf_counter()
            server.stop(timeout=1.0)
            assert time.perf_counter() - started < 3.0
            queued.join(5)
            # The drained request got a structured answer, not silence.
            assert results["queued"]["status"] in ("shutting-down",
                                                   "deadline-exceeded")
        finally:
            faults.reset()
            hung.join(5)

    def test_shutting_down_refuses_new_compiles(self, daemon):
        client = MayaClient(daemon.address, retries=0)
        daemon._running = False
        try:
            response = client.request("compile", source="class L { }")
            assert response["status"] == "shutting-down"
        finally:
            daemon._running = True


class TestDeadlines:
    def test_deadline_exceeded_response_and_recovery(self):
        faults.configure("worker.execute:hang:secs=2:times=1")
        server = MayaDaemon(DaemonConfig(workers=1,
                                         prewarm=False)).start()
        try:
            client = MayaClient(server.address, retries=0)
            response = client.compile("class Hang { }", "h.maya",
                                      cache=False, deadline_ms=300)
            assert response["status"] == "deadline-exceeded"
            assert response["deadline_ms"] == pytest.approx(300.0)
            # The hung worker was replaced: the daemon still serves.
            follow_up = client.compile("class After { }", "a.maya",
                                       cache=False)
            assert follow_up["status"] == "ok"
        finally:
            server.stop()
            faults.reset()

    def test_cooperative_trip_reports_deadline_status(self):
        # A mid-compile deadline trip is a service condition, not a
        # source error: _execute must answer deadline-exceeded, never
        # compile-error (mayac would exit as if the program were bad).
        server = MayaDaemon(DaemonConfig(prewarm=False))
        request = _Request(
            {"source": "class P { void f() { } }", "filename": "p.maya",
             "options": {}},
            deadline=time.monotonic() - 1.0)
        response = server._execute(request)
        assert response["status"] == "deadline-exceeded"
        assert response["deadline_ms"] is not None

    def test_deadline_trip_does_not_poison_artifact_cache(self):
        # The artifact key excludes deadline_ms, so a short-deadline
        # request whose trip resolves inside the handler's grace window
        # must never be stored: later amply-budgeted requests for the
        # same source would be served the cached timeout forever.
        server = MayaDaemon(DaemonConfig(workers=2, prewarm=False)).start()
        try:
            client = MayaClient(server.address, retries=0)
            source = "class Poison { void f() { } }"
            # Warm the process-wide table caches without touching the
            # artifact cache, so the doomed compile trips quickly.
            warm = client.compile(source, "poison.maya", cache=False)
            assert warm["status"] == "ok"
            # A 30ms stall pushes the compile past its 1ms deadline but
            # keeps the trip inside the handler's ~50ms grace window —
            # exactly the shape that used to store the bad response.
            faults.configure("worker.execute:hang:secs=0.03:times=1")
            first = client.compile(source, "poison.maya", deadline_ms=1)
            assert first["status"] == "deadline-exceeded"
            second = client.compile(source, "poison.maya",
                                    deadline_ms=30000)
            assert second["status"] == "ok"
        finally:
            server.stop()
            faults.reset()

    def test_engine_deadline_composes_with_compile(self):
        env = CompileEnv.fresh_session(deadline=time.monotonic() - 1)
        from repro import MayaCompiler

        with pytest.raises(DeadlineExceededError):
            MayaCompiler(env).compile(
                "class Slow { void f() { } }", "slow.maya")

    def test_fresh_session_budgets(self):
        env = CompileEnv.fresh_session(fuel=7, max_errors=3)
        assert env.diag.max_expansion_depth == 7
        assert env.diag.max_errors == 3
        assert env.diag.deadline is None


class TestClientRetry:
    def test_retries_overloaded_then_succeeds(self, monkeypatch):
        client = MayaClient("127.0.0.1:1", retries=4, backoff_s=0.001,
                            rng=random.Random(42))
        responses = [
            protocol.error_response(protocol.STATUS_OVERLOADED, "full",
                                    retry_after_ms=1),
            protocol.error_response(protocol.STATUS_OVERLOADED, "full",
                                    retry_after_ms=1),
            {"status": "ok"},
        ]
        calls = []
        monkeypatch.setattr(client, "_once",
                            lambda payload: calls.append(1) or
                            responses[len(calls) - 1])
        assert client.request("compile")["status"] == "ok"
        assert len(calls) == 3

    def test_gives_up_after_retry_budget(self, monkeypatch):
        client = MayaClient("127.0.0.1:1", retries=1, backoff_s=0.001,
                            rng=random.Random(42))
        monkeypatch.setattr(
            client, "_once",
            lambda payload: protocol.error_response(
                protocol.STATUS_OVERLOADED, "full"))
        response = client.request("compile")
        assert response["status"] == "overloaded"

    def test_connection_refused_raises_after_retries(self):
        # A port nothing listens on: every attempt fails fast.
        victim = socket.socket()
        victim.bind(("127.0.0.1", 0))
        port = victim.getsockname()[1]
        victim.close()
        client = MayaClient(f"127.0.0.1:{port}", retries=1,
                            backoff_s=0.001, rng=random.Random(42))
        with pytest.raises(DaemonError, match="unreachable after 2"):
            client.ping()

    def test_backoff_is_jittered_and_bounded(self):
        client = MayaClient("127.0.0.1:1", backoff_s=0.05,
                            backoff_cap_s=0.4, rng=random.Random(0))
        delays = [client._backoff(attempt, None)
                  for attempt in range(8)]
        assert all(0 < d <= 0.4 for d in delays)
        assert len(set(delays)) == len(delays)  # jitter varies
        hinted = client._backoff(0, {"retry_after_ms": 200})
        assert hinted >= 0.2


class TestEpochCache:
    def test_snapshot_isolation(self):
        cache = EpochCache("test-snap")
        snap = cache.snapshot()
        cache.publish("k", 1)
        assert "k" not in snap          # pinned snapshot never mutates
        assert cache.get("k") == 1
        assert cache.epoch == 1

    def test_publish_once(self):
        cache = EpochCache("test-once")
        cache.publish("k", 1)
        cache.publish("k", 2)           # first writer wins
        assert cache.get("k") == 1
        assert cache.epoch == 1

    def test_bounded_fifo_eviction(self):
        cache = EpochCache("test-bound", max_entries=2)
        cache.publish("a", 1)
        cache.publish("b", 2)
        cache.publish("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert len(cache) == 2

    def test_concurrent_publishes_never_lose_entries(self):
        cache = EpochCache("test-race", max_entries=1000)
        def publish(base):
            for i in range(50):
                cache.publish((base, i), i)
        threads = [threading.Thread(target=publish, args=(b,))
                   for b in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 400

    def test_artifact_key_sensitivity(self):
        base = artifact_key("class A { }", "a.maya", {})
        assert artifact_key("class A { }", "a.maya", {}) == base
        assert artifact_key("class B { }", "a.maya", {}) != base
        assert artifact_key("class A { }", "b.maya", {}) != base
        assert artifact_key("class A { }", "a.maya",
                            {"expand": True}) != base
        # Options that don't affect output don't fragment the cache.
        assert artifact_key("class A { }", "a.maya",
                            {"deadline_ms": 5}) == base


class TestRequestObservability:
    """Request IDs, trace propagation, the stats op, and the
    slow-request log."""

    def test_every_response_carries_wellformed_ids(self, client):
        from repro.obs import log as obs_log

        responses = [
            client.compile("class A { }", "a.maya", cache=False),
            client.ping(),
            client.request("metrics"),
            client.request("nonsense-op"),
        ]
        for response in responses:
            assert obs_log.REQUEST_ID_RE.match(response["request_id"])
            assert obs_log.TRACE_ID_RE.match(response["trace_id"])
        # Request IDs are per-attempt unique.
        ids = [r["request_id"] for r in responses]
        assert len(set(ids)) == len(ids)

    def test_client_minted_trace_id_is_echoed(self, client):
        response = client.request(
            "compile", source="class A { }", filename="a.maya",
            options={"cache": False}, trace_id="t-00000000deadbeef")
        assert response["trace_id"] == "t-00000000deadbeef"
        # A malformed trace id is ignored (the daemon mints a fresh
        # well-formed one), never an error.
        from repro.obs import log as obs_log

        response = client.request(
            "compile", source="class A { }", filename="a.maya",
            options={"cache": False}, trace_id="not-a-trace")
        assert response["status"] == "ok"
        assert obs_log.TRACE_ID_RE.match(response["trace_id"])
        assert response["trace_id"] != "not-a-trace"

    def test_artifact_hit_gets_fresh_ids_and_hit_outcome(self, client):
        first = client.compile("class Hit { }", "hit.maya")
        second = client.compile("class Hit { }", "hit.maya")
        assert second["stats"]["cached"] is True
        assert second["request_id"] != first["request_id"]
        assert second["trace_id"] != first["trace_id"]
        assert second["stats"]["outcomes"]["artifact"] == "hit"
        assert first["stats"]["outcomes"]["artifact"] == "miss"

    def test_response_stats_carry_phases(self, client):
        response = client.compile("class P { int f() { return 1; } }",
                                  "p.maya", cache=False)
        phases = response["stats"]["phases"]
        assert "lex" in phases and "parse+expand" in phases
        assert all(isinstance(v, float) for v in phases.values())

    def test_stats_op_snapshot(self, client):
        client.compile("class S { }", "s.maya", cache=False)
        client.compile("class S { }", "s2.maya", cache=False)
        stats = client.stats()
        assert stats["status"] == "ok"
        workers = stats["workers"]
        assert workers["live"] == 2 and workers["zombies"] == 0
        assert stats["queue"]["capacity"] == 8
        latency = stats["latency_ms"]
        assert latency["window"] >= 2
        assert latency["p50"] > 0 and latency["p99"] >= latency["p50"]
        assert stats["requests"]["compile"]["ok"] >= 2
        assert "epochs" in stats["caches"]
        assert stats["log"]["emitted"] > 0

    def test_stats_op_flushes_metrics_out_live(self, tmp_path):
        out = tmp_path / "live-metrics.json"
        server = MayaDaemon(DaemonConfig(
            workers=1, queue_size=4, prewarm=False,
            metrics_out=str(out))).start()
        try:
            client = MayaClient(server.address, retries=0)
            client.compile("class L { }", "l.maya", cache=False)
            stats = client.stats()
            # The daemon is still running, and the snapshot is on disk.
            assert server.running
            assert stats["metrics_out"] == str(out)
            snapshot = json.loads(out.read_text(encoding="utf-8"))
            assert "maya_server_requests_total" in json.dumps(snapshot)
        finally:
            server.stop()

    def test_slow_request_log_captures_breakdown(self):
        server = MayaDaemon(DaemonConfig(
            workers=1, queue_size=4, prewarm=False,
            slow_request_ms=0.0)).start()  # everything is "slow"
        try:
            client = MayaClient(server.address, retries=0)
            response = client.compile("class Slow { }", "slow.maya",
                                      cache=False)
            stats = client.stats()
            slow = stats["slow_requests"]
            assert slow, "slow-request log is empty at threshold 0"
            entry = slow[-1]
            assert entry["request_id"] == response["request_id"]
            assert entry["total_ms"] > 0
            # Per-request tracing is on by default, so the entry has a
            # span-tree breakdown with the compile phases in it.
            kinds = {span["kind"] for span in entry["breakdown"]}
            assert "compile" in kinds and "phase" in kinds
            assert all("dur_ms" in span and "depth" in span
                       for span in entry["breakdown"])
        finally:
            server.stop()

    def test_trace_requests_off_skips_breakdown(self):
        server = MayaDaemon(DaemonConfig(
            workers=1, queue_size=4, prewarm=False,
            trace_requests=False, slow_request_ms=0.0)).start()
        try:
            client = MayaClient(server.address, retries=0)
            client.compile("class Fast { }", "fast.maya", cache=False)
            entry = client.stats()["slow_requests"][-1]
            assert entry["breakdown"] == []
        finally:
            server.stop()

    def test_per_request_tracing_leaves_global_tracer_alone(self, client):
        from repro import trace

        assert trace.active is None
        client.compile("class T { }", "t.maya", cache=False)
        assert trace.active is None

    def test_module_outcomes_in_response_stats(self, tmp_path):
        sources = {
            "lib.A": "class A { static int one() { return 1; } }",
            "app.B": "import lib.A; class B { }",
        }
        server = MayaDaemon(DaemonConfig(
            workers=2, queue_size=8, prewarm=False,
            module_cache_dir=str(tmp_path))).start()
        try:
            client = MayaClient(server.address, retries=0)
            first = client.compile_modules(sources, ["app.B"],
                                           cache=False)
            assert first["status"] == "ok"
            assert first["stats"]["outcomes"]["modules_recompiled"] == 2
            second = client.compile_modules(sources, ["app.B"],
                                            cache=False)
            assert second["stats"]["outcomes"]["modules_reused"] == 2
        finally:
            server.stop()


class TestLiveIntrospection:
    """mayac --daemon-status and server.top against a running daemon."""

    def test_daemon_status_renders_live_stats(self, client, daemon, capsys):
        from repro import mayac

        for i in range(3):
            assert client.compile(FOREACH_TEMPLATE % i,
                                  f"live{i}.maya",
                                  cache=False)["status"] == "ok"
        assert mayac.main(["--daemon", daemon.address,
                           "--daemon-status"]) == 0
        out = capsys.readouterr().out
        assert "mayad" in out
        assert "queue" in out
        # Nonzero latency stats: the window must reflect the three
        # compiles above, and the queue capacity the config.
        assert "window=3" in out
        assert "/8" in out

    def test_daemon_status_requires_daemon_flag(self, capsys):
        from repro import mayac

        assert mayac.main(["--daemon-status"]) == 2
        assert "--daemon" in capsys.readouterr().err

    def test_top_once_renders_same_view(self, client, daemon, capsys):
        from repro.server import top

        assert client.compile("class TopT { }", "top.maya",
                              cache=False)["status"] == "ok"
        assert top.main(["--address", daemon.address,
                        "--once"]) == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "p95" in out
