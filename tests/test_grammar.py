"""The grammar model: symbols, productions, helpers, versioning."""

import pytest

from repro.grammar import (
    Grammar,
    GrammarError,
    LazySym,
    ListSym,
    Nonterminal,
    OptSym,
    Symbol,
    Terminal,
    TreeSym,
    nonterminal,
    terminal,
)


class TestSymbols:
    def test_terminal_interning(self):
        assert terminal("gt_tok") is terminal("gt_tok")

    def test_nonterminal_interning(self):
        assert nonterminal("GtNT") is nonterminal("GtNT")

    def test_kind_conflict_rejected(self):
        terminal("gt_kind_clash")
        with pytest.raises(ValueError):
            nonterminal("gt_kind_clash")

    def test_node_class_binding(self):
        class FakeNode:
            pass

        sym = nonterminal("GtWithClass", FakeNode)
        assert sym.node_class is FakeNode
        # Rebinding to a different class is an error.
        class Other:
            pass

        with pytest.raises(ValueError):
            nonterminal("GtWithClass", Other)

    def test_lookup(self):
        terminal("gt_lookup_me")
        assert Symbol.lookup("gt_lookup_me") is not None
        assert Symbol.lookup("gt_never_defined_xyz") is None

    def test_terminal_flag(self):
        assert terminal("gt_t").is_terminal
        assert not nonterminal("GtN").is_terminal


class TestParameterizedSymbols:
    def test_list_helper_names(self):
        element = nonterminal("GtElem")
        assert ListSym(element, ",").helper_name() == "list(GtElem,',')"
        assert ListSym(element, ",", min1=True).helper_name() == \
            "list1(GtElem,',')"

    def test_list_equality(self):
        element = nonterminal("GtElem2")
        assert ListSym(element, ",") == ListSym(element, ",")
        assert ListSym(element, ",") != ListSym(element, ";")
        assert ListSym(element, ",") != ListSym(element, ",", min1=True)

    def test_lazy_and_tree_names(self):
        content = nonterminal("GtContent")
        assert "lazy(BraceTree,GtContent)" == \
            LazySym(("BraceTree",), content).helper_name()
        assert "tree(ParenTree,GtContent)" == \
            TreeSym(("ParenTree",), content).helper_name()


class TestGrammarConstruction:
    def _grammar(self):
        g = Grammar("gt")
        E = nonterminal("GtE")
        g.add_production(E, ["IntLit"], tag="gt_lit", internal=True,
                         action=lambda ctx, v: v[0].value)
        g.declare_start(E)
        return g, E

    def test_version_bumps_on_addition(self):
        g, E = self._grammar()
        before = g.version
        g.add_production(E, ["StringLit"], tag="gt_str", internal=True,
                         action=lambda ctx, v: v[0].value)
        assert g.version > before

    def test_duplicate_addition_is_noop(self):
        g, E = self._grammar()
        first = g.add_production(E, ["CharLit"], tag="gt_char",
                                 internal=True, action=lambda ctx, v: v[0])
        version = g.version
        second = g.add_production(E, ["CharLit"], tag="gt_char",
                                  internal=True, action=lambda ctx, v: v[0])
        assert first is second
        assert g.version == version

    def test_copy_shares_productions(self):
        g, E = self._grammar()
        dup = g.copy()
        assert dup.productions == g.productions
        dup.add_production(E, ["DoubleLit"], tag="gt_dbl", internal=True,
                           action=lambda ctx, v: v[0])
        assert len(dup.productions) == len(g.productions) + 1

    def test_fingerprint_reflects_content(self):
        g, E = self._grammar()
        fp1 = g.fingerprint()
        dup = g.copy()
        assert dup.fingerprint() == fp1
        dup.add_production(E, ["LongLit"], tag="gt_long", internal=True,
                           action=lambda ctx, v: v[0])
        assert dup.fingerprint() != fp1

    def test_terminal_lhs_rejected(self):
        g, _ = self._grammar()
        with pytest.raises(GrammarError):
            g.add_production(terminal("gt_bad_lhs"), ["IntLit"])

    def test_list_helper_expansion(self):
        g, E = self._grammar()
        S = nonterminal("GtS")
        g.add_production(S, [ListSym(E, ",")], tag="gt_list", internal=True,
                         action=lambda ctx, v: v[0])
        names = {p.lhs.name for p in g.productions}
        assert "list(GtE,',')" in names

    def test_unknown_rhs_name_becomes_terminal(self):
        g, E = self._grammar()
        production = g.add_production(E, ["brand_new_token_gt"],
                                      tag="gt_new", internal=True,
                                      action=lambda ctx, v: v[0])
        assert production.rhs[0].is_terminal

    def test_production_repr(self):
        g, E = self._grammar()
        assert "GtE ->" in repr(g.productions[0])


class TestHelperActions:
    """Exercise list/opt helper semantics through a real parse."""

    def _parse(self, grammar, start, text):
        from repro.lalr import Parser, ParserContext, build_tables
        from repro.lexer import scan

        parser = Parser(build_tables(grammar), ParserContext())
        value, _ = parser.parse(start, scan(text))
        return value

    def test_separated_list_values(self):
        g = Grammar("gt-list")
        E = nonterminal("GtLE")
        S = nonterminal("GtLS")
        g.add_production(E, ["IntLit"], tag="gtl_lit", internal=True,
                         action=lambda ctx, v: v[0].value)
        g.add_production(S, ["[", ListSym(E, ","), "]"], tag="gtl_s",
                         internal=True, action=lambda ctx, v: v[1])
        g.declare_start(S)
        # Note: flat tokens here, so [ ] are plain terminals only if we
        # scan without tree-building — use explicit scan.
        assert self._parse(g, "GtLS", "[ 1 , 2 , 3 ]") == [1, 2, 3]
        assert self._parse(g, "GtLS", "[ ]") == []

    def test_min1_list_rejects_empty(self):
        from repro.lalr import ParseError

        g = Grammar("gt-list1")
        E = nonterminal("GtL1E")
        S = nonterminal("GtL1S")
        g.add_production(E, ["IntLit"], tag="gtl1_lit", internal=True,
                         action=lambda ctx, v: v[0].value)
        g.add_production(S, ["[", ListSym(E, ",", min1=True), "]"],
                         tag="gtl1_s", internal=True,
                         action=lambda ctx, v: v[1])
        g.declare_start(S)
        assert self._parse(g, "GtL1S", "[ 7 ]") == [7]
        with pytest.raises(ParseError):
            self._parse(g, "GtL1S", "[ ]")

    def test_opt_helper(self):
        g = Grammar("gt-opt")
        E = nonterminal("GtOE")
        S = nonterminal("GtOS")
        g.add_production(E, ["IntLit"], tag="gto_lit", internal=True,
                         action=lambda ctx, v: v[0].value)
        g.add_production(S, ["<", OptSym(E), ">"], tag="gto_s",
                         internal=True, action=lambda ctx, v: v[1])
        g.declare_start(S)
        assert self._parse(g, "GtOS", "< 5 >") == 5
        assert self._parse(g, "GtOS", "< >") is None
