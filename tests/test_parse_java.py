"""Parsing the base Java subset: expressions, statements, declarations."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.lalr import ParseError, Parser
from repro.lexer import stream_lex


def parse(start: str, source: str):
    ctx = CompileContext(CompileEnv())
    parser = Parser(ctx.env.tables(), ctx)
    value, _ = parser.parse(start, stream_lex(source))
    return value


def parse_expr(source: str) -> n.Expression:
    return parse("Expression", source)


def parse_stmt(source: str) -> n.Statement:
    return parse("Statement", source)


class TestExpressions:
    def test_int_literal(self):
        expr = parse_expr("42")
        assert isinstance(expr, n.Literal) and expr.value == 42

    def test_string_literal(self):
        expr = parse_expr('"hi"')
        assert expr.kind == "String" and expr.value == "hi"

    def test_null_true_false(self):
        assert parse_expr("null").kind == "null"
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_name(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, n.NameExpr) and expr.parts == ("a", "b", "c")

    def test_binary_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, n.BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, n.BinaryExpr) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-" and isinstance(expr.left, n.BinaryExpr)

    def test_logical_operators(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"

    def test_relational(self):
        expr = parse_expr("a < b == c > d")
        assert expr.op == "=="

    def test_shift(self):
        assert parse_expr("a << 2").op == "<<"
        assert parse_expr("a >>> 2").op == ">>>"

    def test_conditional(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, n.ConditionalExpr)
        assert isinstance(expr.else_expr, n.ConditionalExpr)

    def test_assignment_right_assoc(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, n.Assignment)
        assert isinstance(expr.value, n.Assignment)

    def test_compound_assignment(self):
        expr = parse_expr("a += 1")
        assert expr.op == "+="

    def test_unary(self):
        assert parse_expr("-a").op == "-"
        assert parse_expr("!a").op == "!"
        assert parse_expr("~a").op == "~"
        assert parse_expr("++a").op == "++"

    def test_postfix(self):
        expr = parse_expr("a++")
        assert isinstance(expr, n.PostfixExpr) and expr.op == "++"

    def test_paren_expression(self):
        expr = parse_expr("(a + b)")
        assert isinstance(expr, n.ParenExpr)

    def test_primitive_cast(self):
        expr = parse_expr("(int) x")
        assert isinstance(expr, n.CastExpr)
        assert expr.type_name.base == ("int",)

    def test_primitive_cast_of_negation(self):
        expr = parse_expr("(int) - x")
        assert isinstance(expr, n.CastExpr)
        assert isinstance(expr.expr, n.UnaryExpr)

    def test_reference_cast(self):
        expr = parse_expr("(Foo) x")
        assert isinstance(expr, n.CastExpr)
        assert expr.type_name.base == ("Foo",)

    def test_paren_minus_is_subtraction(self):
        # (x) - y must parse as subtraction, not a cast (JLS-style
        # UnaryNotPlusMinus restriction).
        expr = parse_expr("(x) - y")
        assert isinstance(expr, n.BinaryExpr) and expr.op == "-"

    def test_cast_of_parenthesized(self):
        expr = parse_expr("(Foo)(x)")
        assert isinstance(expr, n.CastExpr)

    def test_array_cast(self):
        expr = parse_expr("(java.lang.Object[]) x")
        assert isinstance(expr, n.CastExpr)
        assert expr.type_name.dims == 1

    def test_method_call_unqualified(self):
        expr = parse_expr("f(1, 2)")
        assert isinstance(expr, n.MethodInvocation)
        assert expr.method.parts == ("f",)
        assert len(expr.args) == 2

    def test_method_call_empty_args(self):
        expr = parse_expr("f()")
        assert isinstance(expr, n.MethodInvocation) and expr.args == []

    def test_method_call_dotted(self):
        expr = parse_expr("System.out.println(x)")
        assert expr.method.receiver is None
        assert expr.method.parts == ("System", "out", "println")

    def test_method_call_on_expression(self):
        expr = parse_expr("f().g()")
        assert isinstance(expr.method.receiver, n.MethodInvocation)
        assert expr.method.parts == ("g",)

    def test_field_access_on_call(self):
        expr = parse_expr("f().length")
        assert isinstance(expr, n.FieldAccess) and expr.name == "length"

    def test_array_access(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, n.ArrayAccess)
        assert isinstance(expr.index, n.BinaryExpr)

    def test_chained_array_access(self):
        expr = parse_expr("a[i][j]")
        assert isinstance(expr.array, n.ArrayAccess)

    def test_new_object(self):
        expr = parse_expr("new java.util.Vector(10)")
        assert isinstance(expr, n.NewObject)
        assert expr.type_name.base == ("java", "util", "Vector")

    def test_new_array(self):
        expr = parse_expr("new int[3]")
        assert isinstance(expr, n.NewArray)
        assert len(expr.dim_exprs) == 1

    def test_new_2d_array(self):
        expr = parse_expr("new int[2][3]")
        assert len(expr.dim_exprs) == 2

    def test_new_array_extra_dims(self):
        expr = parse_expr("new int[2][]")
        assert len(expr.dim_exprs) == 1 and expr.extra_dims == 1

    def test_new_array_with_initializer(self):
        expr = parse_expr("new int[] { 1, 2, 3 }")
        assert expr.initializer is not None
        assert len(expr.initializer.elements) == 3

    def test_instanceof(self):
        expr = parse_expr("x instanceof java.lang.String")
        assert isinstance(expr, n.InstanceofExpr)

    def test_this(self):
        assert isinstance(parse_expr("this"), n.ThisExpr)

    def test_this_field(self):
        expr = parse_expr("this.count")
        assert isinstance(expr, n.FieldAccess)
        assert isinstance(expr.receiver, n.ThisExpr)

    def test_super_method(self):
        expr = parse_expr("super.size()")
        assert isinstance(expr.method.receiver, n.SuperExpr)

    def test_string_concat_chain(self):
        expr = parse_expr('"a" + b + "c"')
        assert expr.op == "+"


class TestStatements:
    def test_expression_statement(self):
        stmt = parse_stmt("f();")
        assert isinstance(stmt, n.ExprStmt)

    def test_empty_statement(self):
        assert isinstance(parse_stmt(";"), n.EmptyStmt)

    def test_local_declaration(self):
        stmt = parse_stmt("int x = 1, y;")
        assert isinstance(stmt, n.LocalVarDecl)
        assert len(stmt.declarators) == 2

    def test_final_local(self):
        stmt = parse_stmt("final int x = 1;")
        assert stmt.modifiers == ["final"]

    def test_qualified_type_declaration(self):
        stmt = parse_stmt("java.util.Vector v;")
        assert isinstance(stmt, n.LocalVarDecl)
        assert stmt.type_name.base == ("java", "util", "Vector")

    def test_array_declaration(self):
        stmt = parse_stmt("int[] xs;")
        assert stmt.type_name.dims == 1

    def test_trailing_dims_declarator(self):
        stmt = parse_stmt("int xs[];")
        assert stmt.declarators[0].dims == 1

    def test_if(self):
        stmt = parse_stmt("if (a) f();")
        assert isinstance(stmt, n.IfStmt) and stmt.else_stmt is None

    def test_if_else(self):
        stmt = parse_stmt("if (a) f(); else g();")
        assert stmt.else_stmt is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) f(); else g();")
        assert stmt.else_stmt is None
        assert stmt.then_stmt.else_stmt is not None

    def test_while(self):
        assert isinstance(parse_stmt("while (a) f();"), n.WhileStmt)

    def test_do_while(self):
        assert isinstance(parse_stmt("do f(); while (a);"), n.DoStmt)

    def test_for_full(self):
        stmt = parse_stmt("for (int i = 0; i < n; i++) f(i);")
        assert isinstance(stmt, n.ForStmt)
        assert isinstance(stmt.init, n.LocalVarDecl)
        assert len(stmt.update) == 1

    def test_for_empty_header(self):
        stmt = parse_stmt("for (;;) f();")
        assert stmt.init is None and stmt.cond is None and stmt.update == []

    def test_for_expression_init(self):
        stmt = parse_stmt("for (i = 0, j = 1; ; i++, j--) f();")
        assert len(stmt.init) == 2 and len(stmt.update) == 2

    def test_return(self):
        assert parse_stmt("return;").expr is None
        assert parse_stmt("return 1;").expr is not None

    def test_throw(self):
        assert isinstance(parse_stmt("throw e;"), n.ThrowStmt)

    def test_break_continue(self):
        assert isinstance(parse_stmt("break;"), n.BreakStmt)
        assert isinstance(parse_stmt("continue;"), n.ContinueStmt)

    def test_block(self):
        stmt = parse_stmt("{ f(); g(); }")
        assert isinstance(stmt, n.Block)
        assert len(stmt.body.stmts) == 2

    def test_nested_blocks(self):
        stmt = parse_stmt("{ { f(); } }")
        assert isinstance(stmt.body.stmts[0], n.Block)

    def test_assignment_statement(self):
        stmt = parse_stmt("a.b.c = 5;")
        assert isinstance(stmt.expr, n.Assignment)

    def test_array_assignment_statement(self):
        stmt = parse_stmt("a[i] = 5;")
        assert isinstance(stmt.expr.lhs, n.ArrayAccess)

    def test_syntax_error_location(self):
        with pytest.raises(ParseError) as exc:
            parse_stmt("int = 5;")
        assert exc.value.location.line == 1


class TestDeclarations:
    def test_class_declaration(self):
        decl = parse("TypeDeclaration", "class Foo { }")
        assert isinstance(decl, n.ClassDecl) and decl.name.name == "Foo"

    def test_class_with_extends_implements(self):
        decl = parse("TypeDeclaration",
                     "class Foo extends Bar implements A, B { }")
        assert decl.superclass.base == ("Bar",)
        assert len(decl.interfaces) == 2

    def test_interface_declaration(self):
        decl = parse("TypeDeclaration", "interface I extends J { void m(); }")
        assert isinstance(decl, n.InterfaceDecl)
        assert decl.members[0].body is None

    def test_field_member(self):
        decl = parse("MemberDecl", "private static int count = 0;")
        assert isinstance(decl, n.FieldDecl)
        assert decl.modifiers == ["private", "static"]

    def test_method_member(self):
        decl = parse("MemberDecl", "public int f(int a, String b) { return a; }")
        assert isinstance(decl, n.MethodDecl)
        assert len(decl.formals) == 2
        assert isinstance(decl.body, n.LazyNode)

    def test_void_method(self):
        decl = parse("MemberDecl", "void f() { }")
        assert decl.return_type.base == ("void",)

    def test_abstract_method(self):
        decl = parse("MemberDecl", "abstract int f();")
        assert decl.body is None

    def test_constructor_member(self):
        decl = parse("MemberDecl", "Foo(int x) { }")
        assert isinstance(decl, n.ConstructorDecl)

    def test_method_with_throws(self):
        decl = parse("MemberDecl", "void f() throws A, B { }")
        assert len(decl.throws) == 2

    def test_formal_with_trailing_dims(self):
        decl = parse("MemberDecl", "void f(String args[]) { }")
        assert decl.formals[0].type_name.dims == 1

    def test_package_and_imports(self):
        decl = parse("Declaration", "package a.b;")
        assert isinstance(decl, n.PackageDecl)
        decl = parse("Declaration", "import java.util.Vector;")
        assert isinstance(decl, n.ImportDecl) and not decl.on_demand
        decl = parse("Declaration", "import java.util.*;")
        assert decl.on_demand


class TestLaziness:
    def test_method_bodies_are_lazy(self):
        decl = parse("MemberDecl", "void f() { this is not even java !!! }")
        assert isinstance(decl.body, n.LazyNode)
        assert not decl.body.is_forced()

    def test_forcing_bad_body_fails(self):
        decl = parse("MemberDecl", "void f() { syntax error here }")
        with pytest.raises(Exception):
            decl.body.force()

    def test_node_syntax_recorded(self):
        expr = parse_expr("f(x)")
        production, children = expr.syntax
        assert production.lhs.name == "MethodInvocation"
        assert isinstance(children[0], n.MethodName)
