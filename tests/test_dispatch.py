"""Mayan dispatch rules (paper 4.4, experiment E7): applicability,
symmetric specificity, ambiguity errors, lexical tie-breaking,
nextRewrite."""

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.dispatch import AmbiguousDispatchError, Mayan
from repro.lalr import Parser
from repro.lexer import stream_lex
from tests.conftest import run_main


def parse_with(env, start, source):
    ctx = CompileContext(env)
    parser = Parser(env.tables(), ctx)
    value, _ = parser.parse(start, stream_lex(source))
    return value


def tag_literal(tag):
    """A Mayan on int literals that wraps them in a marker string."""

    class TagLiteral(Mayan):
        result = "Literal"
        pattern = "IntLit value"

        def expand(self, ctx, value):
            return n.Literal("String", f"{tag}:{value.value}")

    return TagLiteral()


class TestOverrideAndTieBreaking:
    def test_user_mayan_overrides_base_semantics(self):
        env = CompileEnv()
        tag_literal("A").run(env)
        lit = parse_with(env, "Expression", "42")
        assert lit.value == "A:42"

    def test_later_import_wins(self):
        """Mayans that are imported later override earlier Mayans."""
        env = CompileEnv()
        tag_literal("first").run(env)
        tag_literal("second").run(env)
        lit = parse_with(env, "Expression", "7")
        assert lit.value == "second:7"

    def test_lexical_scoping_of_imports(self):
        """A child environment's imports do not leak to the parent."""
        env = CompileEnv()
        child = env.child()
        tag_literal("inner").run(child)
        assert parse_with(child, "Expression", "1").value == "inner:1"
        assert parse_with(env, "Expression", "1").value == 1

    def test_token_value_dispatch(self):
        """Dispatching on identifier values: no reserved words."""
        env = CompileEnv()

        class OnlyFoo(Mayan):
            result = "Expression"
            pattern = "foo ( )"

            def expand(self, ctx):
                return n.Literal("int", 99)

        OnlyFoo().run(env)
        assert parse_with(env, "Expression", "foo()").value == 99
        other = parse_with(env, "Expression", "bar()")
        assert isinstance(other, n.MethodInvocation)


class TestNextRewrite:
    def test_next_rewrite_falls_to_base(self):
        env = CompileEnv()

        class PassThrough(Mayan):
            result = "Literal"
            pattern = "IntLit value"

            def expand(self, ctx, value):
                return ctx.next_rewrite()

        PassThrough().run(env)
        lit = parse_with(env, "Expression", "5")
        assert isinstance(lit, n.Literal) and lit.value == 5

    def test_next_rewrite_chains_through_imports(self):
        env = CompileEnv()
        calls = []

        def chain_mayan(tag, defer):
            class Chain(Mayan):
                result = "Literal"
                pattern = "IntLit value"

                def expand(self, ctx, value):
                    calls.append(tag)
                    if defer:
                        return ctx.next_rewrite()
                    return n.Literal("String", tag)

            return Chain()

        chain_mayan("bottom", False).run(env)
        chain_mayan("top", True).run(env)
        lit = parse_with(env, "Expression", "5")
        # top imported later => runs first; defers to bottom.
        assert calls == ["top", "bottom"]
        assert lit.value == "bottom"

    def test_conditional_rewrite(self):
        env = CompileEnv()

        class OnlyBigNumbers(Mayan):
            result = "Literal"
            pattern = "IntLit value"

            def expand(self, ctx, value):
                if value.value > 100:
                    return n.Literal("String", "big")
                return ctx.next_rewrite()

        OnlyBigNumbers().run(env)
        assert parse_with(env, "Expression", "5").value == 5
        assert parse_with(env, "Expression", "500").value == "big"


class TestSpecificity:
    def _typed_mayans(self, env, receiver_types):
        mayans = []
        for type_name in receiver_types:
            class Typed(Mayan):
                result = "Statement"
                pattern = (
                    f"QName:{type_name} e \\. poke ( ) \\;"
                )
                tag = type_name

                def expand(self, ctx, e):
                    return n.ExprStmt(
                        n.Literal("String", type(self).tag))

            Typed.__name__ = f"Typed_{type_name.split('.')[-1]}"
            mayans.append(Typed())
        return mayans

    def test_subtype_spec_more_specific(self):
        """A maya.util.Vector specializer beats java.util.Vector."""
        env = CompileEnv()
        scope_env = env
        general, specific = self._typed_mayans(
            env, ["java.util.Vector", "maya.util.Vector"])
        # Import the more specific one FIRST: specificity must win over
        # import order.
        specific.run(env)
        general.run(env)

        ctx = CompileContext(env)
        ctx.scope.define(
            "mv", env.registry.resolve_type(("maya", "util", "Vector")))
        ctx.scope.define(
            "jv", env.registry.resolve_type(("java", "util", "Vector")))
        parser = Parser(env.tables(), ctx)
        stmt, _ = parser.parse("Statement", stream_lex("mv.poke();"))
        assert stmt.expr.value == "maya.util.Vector"
        stmt, _ = parser.parse("Statement", stream_lex("jv.poke();"))
        assert stmt.expr.value == "java.util.Vector"

    def test_structure_beats_no_structure(self):
        """VForEach vs EForEach: specializing the receiver's node type
        (structure) is more specific (paper figure 7 discussion)."""
        lines = run_main("""
            class Demo {
                static void main() {
                    use maya.util.ForEach;
                    maya.util.Vector v = new maya.util.Vector();
                    v.addElement("x");
                    v.elements().foreach(String s) { System.out.println(s); }
                }
            }
        """, macros=True)
        assert lines == ["x"]

    def test_symmetric_ambiguity_is_error(self):
        """Two Mayans each more specific on different arguments."""
        env = CompileEnv()
        string_type = "java.lang.String"
        object_type = "java.lang.Object"

        def pair_mayan(left, right):
            class Pair(Mayan):
                result = "Expression"
                pattern = (
                    f"pair ( Expression:{left} a , Expression:{right} b )"
                )

                def expand(self, ctx, a, b):
                    return n.Literal("int", 0)

            return Pair()

        pair_mayan(string_type, object_type).run(env)
        pair_mayan(object_type, string_type).run(env)

        ctx = CompileContext(env)
        parser = Parser(env.tables(), ctx)
        with pytest.raises(AmbiguousDispatchError):
            parser.parse("Expression", stream_lex('pair("a", "b")'))

    def test_equal_patterns_tie_break_not_error(self):
        env = CompileEnv()
        tag_literal("one").run(env)
        tag_literal("two").run(env)
        # Equal specificity: no ambiguity error, later import wins.
        assert parse_with(env, "Expression", "3").value == "two:3"


class TestNoApplicableMayan:
    def test_new_production_without_mayans_errors_on_reduce(self):
        """Paper 3.2: if no Mayans are declared on a new production, an
        error is signaled when input causes the production to reduce."""
        from repro.dispatch import NoApplicableMayanError

        env = CompileEnv()
        env.add_production("Statement",
                           "gadget (Expression) \\;", tag="gadget")
        ctx = CompileContext(env)
        parser = Parser(env.tables(), ctx)
        with pytest.raises(NoApplicableMayanError):
            parser.parse("Statement", stream_lex("gadget(1);"))
