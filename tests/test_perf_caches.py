"""Cache invalidation and bounds for the performance layer (PR 2).

The caching layer (dispatch plans, versioned grammar fingerprints, the
LRU table cache, the on-disk table cache) must be invisible: a Mayan
that extends the grammar mid-compile gets fresh tables and fresh
dispatch plans, scopes never see each other's imports through a stale
plan, and every error a cached outcome replays is byte-identical to
the uncached one.
"""

import pickle

import pytest

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.dispatch import AmbiguousDispatchError, Mayan
from repro.dispatch.dispatcher import _ORDER_STATS, _PLAN_STATS
from repro.lalr import Parser
from repro.lalr.tables import (
    LRUCache,
    disable_disk_cache,
    enable_disk_cache,
    table_cache_clear,
    tables_for,
)
from repro.lexer import stream_lex
from repro import perf


def parse_with(env, start, source):
    ctx = CompileContext(env)
    parser = Parser(env.tables(), ctx)
    value, _ = parser.parse(start, stream_lex(source))
    return value


def tag_literal(tag):
    class TagLiteral(Mayan):
        result = "Literal"
        pattern = "IntLit value"

        def expand(self, ctx, value):
            return n.Literal("String", f"{tag}:{value.value}")

    return TagLiteral()


class TestTableCacheInvalidation:
    def test_mid_compile_extension_yields_fresh_tables(self):
        """A production added mid-compile (what a Mayan's metaprogram
        does on ``use``) must invalidate the env's table memo and the
        fingerprint, not reuse stale tables."""
        env = CompileEnv()
        before = env.tables()
        before_fingerprint = env.grammar.fingerprint()

        env.add_production("Statement", "gadget ( Expression ) \\;",
                           tag="gadget")

        class Gadget(Mayan):
            result = "Statement"
            pattern = "gadget ( Expression e ) \\;"

            def expand(self, ctx, e):
                return e

        Gadget().run(env)

        after = env.tables()
        assert after is not before
        assert env.grammar.fingerprint() is not before_fingerprint
        # The fresh tables actually parse the new syntax.
        value = parse_with(env, "Statement", "gadget(42);")
        assert isinstance(value, n.Literal)
        # And the old tables would not have: the statement parses only
        # through the extended grammar's fingerprint.
        assert tables_for(env.grammar) is after

    def test_pristine_envs_share_one_table_set(self):
        """Content-keyed caching: equal grammars share tables."""
        assert CompileEnv().tables() is CompileEnv().tables()

    def test_extension_does_not_leak_across_envs(self):
        """Extending one env's grammar must not hand its tables to a
        pristine env (no stale reuse across CompileEnvs)."""
        extended = CompileEnv()
        extended.add_production("Statement", "gadget ( Expression ) \\;",
                                tag="gadget")
        pristine = CompileEnv()
        assert extended.grammar.fingerprint() \
            is not pristine.grammar.fingerprint()
        assert extended.tables() is not pristine.tables()
        # In the pristine env the same text is an ordinary method-call
        # statement, not the extended production.
        statement = parse_with(pristine, "Statement", "gadget(42);")
        assert isinstance(statement.expr, n.MethodInvocation)

    def test_grammar_version_moves_on_every_mutation(self):
        env = CompileEnv()
        version = env.grammar.version
        env.add_production("Statement", "gadget ( Expression ) \\;",
                           tag="gadget")
        assert env.grammar.version > version


class TestDispatchPlanInvalidation:
    def test_import_after_first_dispatch_takes_effect(self):
        """A plan cached before an import must be rebuilt after it —
        the import epoch, not the cached chain, decides."""
        env = CompileEnv()
        assert parse_with(env, "Expression", "5").value == 5  # caches plan
        tag_literal("late").run(env)
        assert parse_with(env, "Expression", "5").value == "late:5"

    def test_child_scope_import_invisible_to_parent_plan(self):
        """``use`` scoping survives plan caching: the child's import
        bumps the shared epoch, and the parent's rebuilt plan still
        sees only its own (empty) chain."""
        env = CompileEnv()
        assert parse_with(env, "Expression", "9").value == 9  # parent plan
        child = env.child()
        tag_literal("inner").run(child)
        assert parse_with(child, "Expression", "9").value == "inner:9"
        assert parse_with(env, "Expression", "9").value == 9

    def test_sibling_use_scopes_do_not_share_plans(self):
        """Two sibling ``use`` scopes with different imports each
        dispatch through their own chain."""
        env = CompileEnv()
        left = env.child()
        right = env.child()
        tag_literal("L").run(left)
        tag_literal("R").run(right)
        assert parse_with(left, "Expression", "1").value == "L:1"
        assert parse_with(right, "Expression", "1").value == "R:1"

    def test_repeat_dispatch_hits_plan_cache(self):
        env = CompileEnv()
        tag_literal("x").run(env)
        parse_with(env, "Expression", "2")  # warm plans for this scope
        hits = _PLAN_STATS.hits
        parse_with(env, "Expression", "3")
        assert _PLAN_STATS.hits > hits


class TestOrderCacheAndAmbiguity:
    @staticmethod
    def _ambiguous_env():
        env = CompileEnv()

        def pair_mayan(left, right):
            class Pair(Mayan):
                result = "Expression"
                pattern = (
                    f"pair ( Expression:{left} a , Expression:{right} b )"
                )

                def expand(self, ctx, a, b):
                    return n.Literal("int", 0)

            return Pair()

        pair_mayan("java.lang.String", "java.lang.Object").run(env)
        pair_mayan("java.lang.Object", "java.lang.String").run(env)
        return env

    def test_cached_ambiguity_error_is_byte_identical(self):
        """The second raise comes from the cached _AmbiguityRecord and
        must read exactly like the first (same message, same pair)."""
        env = self._ambiguous_env()
        ctx = CompileContext(env)
        parser = Parser(env.tables(), ctx)
        with pytest.raises(AmbiguousDispatchError) as first:
            parser.parse("Expression", stream_lex('pair("a", "b")'))
        hits = _ORDER_STATS.hits
        with pytest.raises(AmbiguousDispatchError) as second:
            parser.parse("Expression", stream_lex('pair("a", "b")'))
        assert str(second.value) == str(first.value)
        assert second.value.mayan_a is first.value.mayan_a
        assert second.value.mayan_b is first.value.mayan_b
        assert _ORDER_STATS.hits > hits  # replayed, not recomputed

    def test_order_cache_replay_preserves_tie_breaking(self):
        """Repeated dispatch through the cached order keeps the
        later-import-wins rule."""
        env = CompileEnv()
        tag_literal("first").run(env)
        tag_literal("second").run(env)
        for _ in range(3):
            assert parse_with(env, "Expression", "7").value == "second:7"


class TestLRUCache:
    def test_eviction_is_lru_and_counted(self):
        stats = perf.CacheStats("test.lru")
        cache = LRUCache(2, stats)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now oldest
        cache.put("c", 3)
        assert stats.evictions == 1
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.get("b") is None
        assert stats.hits == 3 and stats.misses == 1
        assert len(cache) == 2


class TestDiskCache:
    def test_roundtrip_restores_working_tables(self, tmp_path):
        enable_disk_cache(str(tmp_path))
        try:
            table_cache_clear()
            env = CompileEnv()
            generated = env.tables()  # generates and persists
            assert list(tmp_path.glob("tables-*.pickle"))

            table_cache_clear()
            restored = tables_for(CompileEnv().grammar)
            assert restored is not generated
            assert restored.action == generated.action
            assert restored.goto == generated.goto

            # The restored tables drive a real parse.
            restored_env = CompileEnv()
            value = parse_with(restored_env, "Expression", "1 + 2 * 3")
            assert isinstance(value, n.BinaryExpr)
        finally:
            disable_disk_cache()
            table_cache_clear()

    def test_corrupt_cache_entry_regenerates(self, tmp_path):
        enable_disk_cache(str(tmp_path))
        try:
            table_cache_clear()
            CompileEnv().tables()
            (entry,) = tmp_path.glob("tables-*.pickle")
            entry.write_bytes(b"not a pickle")

            table_cache_clear()
            tables = tables_for(CompileEnv().grammar)  # must not raise
            assert tables.action
        finally:
            disable_disk_cache()
            table_cache_clear()

    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        """Crash-safe hygiene: garbage bytes are moved to a
        ``.quarantine`` file (for postmortems, and so the next load
        doesn't re-parse them), counted, and regenerated in place."""
        from repro.obs.metrics import REGISTRY

        corrupt_total = REGISTRY.get("maya_table_cache_corrupt_total")
        enable_disk_cache(str(tmp_path))
        try:
            table_cache_clear()
            CompileEnv().tables()
            (entry,) = tmp_path.glob("tables-*.pickle")
            entry.write_bytes(b"\x00\xffgarbage bytes, not a pickle")
            before = corrupt_total.value

            table_cache_clear()
            assert tables_for(CompileEnv().grammar).action
            assert corrupt_total.value == before + 1
            # The bad bytes were set aside, and regeneration re-wrote a
            # good entry at the original path.
            quarantined = entry.with_suffix(".pickle.quarantine")
            assert quarantined.read_bytes().startswith(b"\x00\xff")
            assert pickle.loads(entry.read_bytes())["format"] >= 1

            # A quarantined entry is never trusted again: the next load
            # round-trips the regenerated file cleanly.
            table_cache_clear()
            assert tables_for(CompileEnv().grammar).action
            assert corrupt_total.value == before + 1
        finally:
            disable_disk_cache()
            table_cache_clear()

    def test_stale_format_is_a_miss_not_corruption(self, tmp_path):
        """A well-formed entry from an older snapshot format is just a
        miss: no quarantine, no corruption count."""
        from repro.obs.metrics import REGISTRY

        corrupt_total = REGISTRY.get("maya_table_cache_corrupt_total")
        enable_disk_cache(str(tmp_path))
        try:
            table_cache_clear()
            CompileEnv().tables()
            (entry,) = tmp_path.glob("tables-*.pickle")
            payload = pickle.loads(entry.read_bytes())
            payload["format"] = 0
            entry.write_bytes(pickle.dumps(payload))
            before = corrupt_total.value

            table_cache_clear()
            assert tables_for(CompileEnv().grammar).action
            assert corrupt_total.value == before
            assert not list(tmp_path.glob("*.quarantine"))
        finally:
            disable_disk_cache()
            table_cache_clear()

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """An entry whose recorded key differs from the requesting
        grammar's fingerprint is ignored, not trusted."""
        enable_disk_cache(str(tmp_path))
        try:
            table_cache_clear()
            CompileEnv().tables()
            (entry,) = tmp_path.glob("tables-*.pickle")
            payload = pickle.loads(entry.read_bytes())
            payload["key"] = ("tampered",)
            entry.write_bytes(pickle.dumps(payload))

            table_cache_clear()
            tables = tables_for(CompileEnv().grammar)  # regenerated
            assert tables.action
        finally:
            disable_disk_cache()
            table_cache_clear()


class TestFingerprints:
    def test_fingerprint_is_version_cached(self):
        grammar = CompileEnv().grammar
        assert grammar.fingerprint() is grammar.fingerprint()

    def test_equal_content_interns_to_one_object(self):
        """Fresh envs produce the *same* fingerprint object, so cache
        lookups compare by identity."""
        assert CompileEnv().grammar.fingerprint() \
            is CompileEnv().grammar.fingerprint()

    def test_copy_shares_fingerprint_until_diverging(self):
        env = CompileEnv()
        dup = env.grammar.copy()
        assert dup.fingerprint() is env.grammar.fingerprint()
        dup.add_production(
            env.grammar.productions[0].lhs, ["IntLit", "IntLit"],
            tag="fp_test", internal=True, action=lambda ctx, v: v[0],
        )
        assert dup.fingerprint() is not env.grammar.fingerprint()
