"""Unit tests for the type system and registry."""

import pytest

from repro.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    INT,
    LONG,
    NULL,
    TypeError_,
    array_of,
    binary_numeric_promotion,
    can_assign,
    can_cast,
)
from repro.types.builtins import standard_registry


@pytest.fixture
def registry():
    return standard_registry()


class TestPrimitives:
    def test_widening(self):
        assert INT.widens_to(LONG)
        assert INT.widens_to(DOUBLE)
        assert CHAR.widens_to(INT)
        assert not LONG.widens_to(INT)
        assert not INT.widens_to(CHAR)
        assert not BOOLEAN.widens_to(INT)

    def test_assignability(self):
        assert can_assign(INT, DOUBLE)
        assert not can_assign(DOUBLE, INT)
        assert can_assign(INT, INT)

    def test_promotion(self):
        assert binary_numeric_promotion(INT, DOUBLE) is DOUBLE
        assert binary_numeric_promotion(INT, LONG) is LONG
        assert binary_numeric_promotion(CHAR, INT) is INT

    def test_numeric_casts(self):
        assert can_cast(DOUBLE, INT)
        assert can_cast(INT, CHAR)
        assert not can_cast(BOOLEAN, INT)


class TestClassTypes:
    def test_subtyping_chain(self, registry):
        string = registry.require("java.lang.String")
        obj = registry.require("java.lang.Object")
        assert string.is_subtype_of(obj)
        assert not obj.is_subtype_of(string)

    def test_interface_subtyping(self, registry):
        enum = registry.require("java.util.Enumeration")
        assert enum.is_interface

    def test_maya_vector_extends_java_vector(self, registry):
        maya_vec = registry.require("maya.util.Vector")
        java_vec = registry.require("java.util.Vector")
        assert maya_vec.is_subtype_of(java_vec)
        assert maya_vec.is_subtype_of(registry.require("java.lang.Object"))

    def test_null_assignable_to_references(self, registry):
        assert can_assign(NULL, registry.require("java.lang.String"))
        assert not can_assign(NULL, INT)

    def test_ancestors_order(self, registry):
        maya_vec = registry.require("maya.util.Vector")
        names = [k.name for k in maya_vec.ancestors()]
        assert names[0] == "maya.util.Vector"
        assert names[1] == "java.util.Vector"
        assert "java.lang.Object" in names

    def test_downcast_allowed_upcast_allowed(self, registry):
        obj = registry.require("java.lang.Object")
        string = registry.require("java.lang.String")
        assert can_cast(obj, string)
        assert can_cast(string, obj)

    def test_sibling_cast_rejected(self, registry):
        string = registry.require("java.lang.String")
        vector = registry.require("java.util.Vector")
        assert not can_cast(string, vector)


class TestArrays:
    def test_interning(self):
        assert array_of(INT) is array_of(INT)
        assert array_of(INT, 2) is array_of(array_of(INT))

    def test_array_subtype_of_object(self, registry):
        obj = registry.require("java.lang.Object")
        assert array_of(INT).is_subtype_of(obj)

    def test_covariance(self, registry):
        obj = registry.require("java.lang.Object")
        string = registry.require("java.lang.String")
        assert array_of(string).is_subtype_of(array_of(obj))
        assert not array_of(INT).is_subtype_of(array_of(obj))

    def test_str(self, registry):
        assert str(array_of(INT, 2)) == "int[][]"


class TestMemberLookup:
    def test_field_inheritance(self, registry):
        klass = registry.declare("test.Base")
        klass.declare_field("x", INT)
        sub = registry.declare("test.Sub", "test.Base")
        assert sub.find_field("x").type is INT

    def test_method_overload_resolution(self, registry):
        stream = registry.require("java.io.PrintStream")
        string = registry.require("java.lang.String")
        chosen = stream.find_method("println", [string])
        assert chosen.param_types == (string,)
        chosen_int = stream.find_method("println", [INT])
        assert chosen_int.param_types == (INT,)

    def test_no_such_method(self, registry):
        with pytest.raises(TypeError_):
            registry.require("java.lang.String").find_method("nope", [])

    def test_most_specific_overload(self, registry):
        obj = registry.require("java.lang.Object")
        string = registry.require("java.lang.String")
        klass = registry.declare("test.Over")
        klass.declare_method("f", [obj], INT)
        klass.declare_method("f", [string], INT)
        chosen = klass.find_method("f", [string])
        assert chosen.param_types == (string,)

    def test_override_shadows_super(self, registry):
        base = registry.declare("test.B2", "java.lang.Object")
        base.declare_method("m", [], INT)
        sub = registry.declare("test.S2", "test.B2")
        override = sub.declare_method("m", [], INT)
        assert sub.find_method("m", []) is override

    def test_implicit_default_constructor(self, registry):
        klass = registry.declare("test.NoCtor")
        ctor = klass.find_constructor([])
        assert ctor.param_types == ()

    def test_constructor_overloads(self, registry):
        vector = registry.require("java.util.Vector")
        assert vector.find_constructor([INT]).param_types == (INT,)
        assert vector.find_constructor([]).param_types == ()

    def test_intercession_adds_member(self, registry):
        # The paper's "limited form of intercession that allows member
        # declarations to be added to a class body".
        shape = registry.declare("test.Shape")
        shape.declare_method("area", [], INT)
        assert shape.find_method("area", []).return_type is INT


class TestRegistryResolution:
    def test_fully_qualified(self, registry):
        assert registry.resolve(("java", "util", "Vector")).name == \
            "java.util.Vector"

    def test_java_lang_implicit(self, registry):
        assert registry.resolve(("String",)).name == "java.lang.String"

    def test_single_import(self, registry):
        imports = [(("java", "util", "Vector"), False)]
        assert registry.resolve(("Vector",), imports).name == \
            "java.util.Vector"

    def test_on_demand_import(self, registry):
        imports = [(("java", "util"), True)]
        assert registry.resolve(("Hashtable",), imports).name == \
            "java.util.Hashtable"

    def test_ambiguous_on_demand(self, registry):
        registry.declare("other.Vector")
        imports = [(("java", "util"), True), (("other",), True)]
        with pytest.raises(TypeError_):
            registry.resolve(("Vector",), imports)

    def test_current_package_first(self, registry):
        registry.declare("mypack.String")
        found = registry.resolve(("String",), (), "mypack")
        assert found.name == "mypack.String"

    def test_resolve_type_with_dims(self, registry):
        resolved = registry.resolve_type(("int",), 2)
        assert isinstance(resolved, ArrayType)

    def test_unknown_type(self, registry):
        with pytest.raises(TypeError_):
            registry.resolve_type(("NoSuch",), 0)
