"""Pattern parsing: parameter lists, production declarations (E5)."""

import pytest

from repro.core import CompileEnv
from repro.dispatch.specializers import StructSpec, TokenSpec, TypeSpec
from repro.grammar import Symbol
from repro.lalr.tables import tables_for
from repro.patterns import (
    PatternError,
    compile_parameter_list,
    lex_pattern,
    production_from_pattern,
)
from repro.patterns.items import GroupItem, HoleItem, TokItem


@pytest.fixture
def env():
    environment = CompileEnv()
    # Declare the foreach production so patterns can be compiled on it.
    production_from_pattern(
        environment.grammar, "Statement",
        "MethodName (Formal) lazy(BraceTree, BlockStmts)",
        tag="foreach_stmt",
    )
    return environment


class TestPatternLexer:
    def test_holes_and_names(self):
        items = lex_pattern("Expression:java.util.Enumeration enumExp")
        assert len(items) == 1
        hole = items[0]
        assert isinstance(hole, HoleItem)
        assert hole.name == "enumExp"
        assert isinstance(hole.spec, TypeSpec)
        assert hole.spec.type_parts == ("java", "util", "Enumeration")

    def test_expression_holes_lower_to_primary(self):
        hole = lex_pattern("Expression e")[0]
        assert hole.declared.name == "Expression"
        assert hole.symbol.name == "Primary"

    def test_escaped_token(self):
        items = lex_pattern("\\.")
        assert isinstance(items[0], TokItem) and items[0].token.kind == "."

    def test_unknown_identifier_is_token_literal(self):
        items = lex_pattern("foreach")
        assert isinstance(items[0], TokItem)
        assert items[0].token.text == "foreach"

    def test_groups(self):
        items = lex_pattern("(Formal var)")
        group = items[0]
        assert isinstance(group, GroupItem) and group.kind == "ParenTree"
        assert isinstance(group.items[0], HoleItem)

    def test_lazy_hole(self):
        items = lex_pattern("lazy(BraceTree, BlockStmts) body")
        hole = items[0]
        assert hole.name == "body"
        assert "lazy" in hole.symbol.name

    def test_array_type_spec(self):
        hole = lex_pattern("Expression:java.lang.Object[] arr")[0]
        assert hole.spec.dims == 1

    def test_dangling_escape(self):
        with pytest.raises(PatternError):
            lex_pattern("a \\")


class TestProductionDeclaration:
    def test_declares_production(self, env):
        production = env.add_production(
            "Statement", "unless (Expression) lazy(BraceTree, BlockStmts)"
        )
        assert production.lhs.name == "Statement"
        assert production.rhs[0].name == "unless"

    def test_redeclaration_is_noop(self, env):
        first = env.add_production("Statement",
                                   "MethodName (Formal) lazy(BraceTree, BlockStmts)")
        second = env.add_production("Statement",
                                    "MethodName (Formal) lazy(BraceTree, BlockStmts)")
        assert first is second

    def test_extended_grammar_still_lalr(self, env):
        tables_for(env.grammar)  # raises ConflictError on failure

    def test_multi_symbol_group(self, env):
        production = env.add_production(
            "Statement", "swap (Expression , Expression) \\;"
        )
        helper = production.rhs[1]
        assert helper.name.startswith("tree(")


class TestParameterCompilation:
    def test_foreach_parameter_structure(self, env):
        """Figure 5: the pattern parser infers EForEach's structure."""
        production, params, names = compile_parameter_list(
            tables_for(env.grammar), "Statement",
            "Expression:java.util.Enumeration enumExp \\. foreach "
            "(Formal var) lazy(BraceTree, BlockStmts) body",
        )
        assert production.tag == "foreach_stmt"
        assert len(params) == 3
        # First param: MethodName with substructure Expression . foreach
        method_name = params[0]
        assert method_name.symbol.name == "MethodName"
        assert isinstance(method_name.spec, StructSpec)
        receiver, dot, ident = method_name.spec.subparams
        assert receiver.name == "enumExp"
        assert isinstance(receiver.spec, TypeSpec)
        assert isinstance(ident.spec, TokenSpec)
        assert ident.spec.value == "foreach"
        # Second param: the parenthesized Formal
        assert params[1].symbol.name == "Formal"
        assert params[1].name == "var"
        # Third: the lazy block
        assert params[2].name == "body"
        assert names == ["enumExp", "var", "body"]

    def test_vforeach_nested_structure(self, env):
        """Figure 7: VForEach's receiver is itself structured."""
        production, params, _ = compile_parameter_list(
            tables_for(env.grammar), "Statement",
            "Expression:maya.util.Vector v \\. elements ( ) \\. foreach "
            "(Formal var) lazy(BraceTree, BlockStmts) body",
        )
        method_name = params[0]
        receiver = method_name.spec.subparams[0]
        # The receiver is a MethodInvocation structure (CallExpr in the
        # paper's AST vocabulary).
        assert isinstance(receiver.spec, StructSpec)
        assert receiver.spec.production.lhs.name == "MethodInvocation"

    def test_base_production_pattern(self, env):
        """Patterns can select built-in productions (no extension)."""
        production, params, _ = compile_parameter_list(
            tables_for(env.grammar), "Expression",
            "Expression left + Expression right",
        )
        assert production.tag == "add_+"
        assert params[0].name == "left" and params[2].name == "right"

    def test_invalid_pattern_rejected(self, env):
        with pytest.raises(PatternError):
            compile_parameter_list(
                tables_for(env.grammar), "Statement",
                "if if if",
            )

    def test_statement_hole_pattern(self, env):
        production, params, _ = compile_parameter_list(
            tables_for(env.grammar), "Statement",
            "while (Expression cond) Statement body",
        )
        assert production.tag == "while"
        assert params[2].name == "body"
