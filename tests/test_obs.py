"""The telemetry subsystem: metrics model, exporters, laziness profiler.

Exporter output is golden-filed (``tests/golden/metrics.prom``,
``tests/golden/flamegraph.speedscope.json``) from fully synthetic
inputs — a hand-built registry and a tracer whose span clocks are
overwritten with fixed values — so the bytes are deterministic and any
format drift is a visible diff.  Refresh intentionally with
``pytest tests/test_obs.py --update-goldens``.
"""

import json
import pathlib

import pytest

from repro import trace
from repro.obs import export, flamegraph
from repro.obs import lazy as obs_lazy
from repro.obs.metrics import (
    Histogram,
    MetricError,
    MetricsRegistry,
    sanitize_name,
)
from tests.conftest import compile_source

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, text: str, request) -> None:
    path = GOLDEN_DIR / name
    if request.config.getoption("--update-goldens"):
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path.name}; run pytest --update-goldens"
    )
    assert text == path.read_text(), (
        f"{path.name} drifted; rerun with --update-goldens if intended"
    )


# ---------------------------------------------------------------------------
# Metrics model
# ---------------------------------------------------------------------------


class TestThreadSafety:
    """The daemon's worker pool hammers shared families concurrently;
    increments and observations must never be lost or torn."""

    THREADS = 8
    ROUNDS = 2001  # divisible by 3: the histogram total is exact

    def _hammer(self, work):
        import threading

        errors = []

        def run(index):
            try:
                work(index)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        family = registry.counter("t_mt_total", "Hammered.", ("kind",))

        def work(index):
            # Every thread alternates between a shared child and its
            # own, so both child creation and value bumps race.
            own = family.labels(f"thread{index}")
            shared = family.labels("shared")
            for _ in range(self.ROUNDS):
                own.inc()
                shared.inc()

        self._hammer(work)
        assert family.labels("shared").value == \
            self.THREADS * self.ROUNDS
        for index in range(self.THREADS):
            assert family.labels(f"thread{index}").value == self.ROUNDS

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        family = registry.histogram("t_mt_ms", "Hammered.",
                                    bounds=(1, 10, 100))

        def work(index):
            for round_number in range(self.ROUNDS):
                family.observe((round_number % 3) * 50)

        self._hammer(work)
        child = family.labels()
        assert child.count == self.THREADS * self.ROUNDS
        assert child.total == self.THREADS * self.ROUNDS // 3 * 150
        assert sum(child.buckets) == child.count

    def test_cache_stats_view_mutations_are_exact(self):
        # CacheStats is a view over a registry family; its hit()/miss()
        # must go through the locked Counter.inc(), not bare value
        # writes, or concurrent daemon workers lose counts.
        from repro import perf

        stats = perf.cache_stats("t-mt-view")
        stats.reset()

        def work(index):
            for _ in range(self.ROUNDS):
                stats.hit()
                stats.miss()

        self._hammer(work)
        assert stats.hits == self.THREADS * self.ROUNDS
        assert stats.misses == self.THREADS * self.ROUNDS

    def test_racing_registration_yields_one_family(self):
        registry = MetricsRegistry()
        families = [None] * self.THREADS

        def work(index):
            families[index] = registry.counter("t_mt_race_total",
                                               "Raced.")

        self._hammer(work)
        assert len({id(f) for f in families}) == 1


class TestRegistry:
    def test_counter_accumulates_per_label_child(self):
        registry = MetricsRegistry()
        family = registry.counter("t_events_total", "Events.", ("kind",))
        family.labels("hit").inc()
        family.labels("hit").inc(2)
        family.labels("miss").inc()
        samples = {
            labels: child.value for labels, child in family.samples()
        }
        assert samples[("hit",)] == 3
        assert samples[("miss",)] == 1

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "T.")
        with pytest.raises(MetricError):
            family.inc(-1)

    def test_same_name_same_kind_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "T.", ("kind",))
        again = registry.counter("t_total", "T.", ("kind",))
        assert first is again

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "T.")
        with pytest.raises(MetricError):
            registry.gauge("t_total", "T.")

    def test_labelnames_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "T.", ("kind",))
        with pytest.raises(MetricError):
            registry.counter("t_total", "T.", ("kind", "extra"))

    def test_invalid_metric_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("0bad-name", "Bad.")

    def test_sanitize_name(self):
        assert sanitize_name("expansion.depth") == "expansion_depth"
        assert sanitize_name("9lives") == "_9lives"

    def test_reset_keeps_bound_children_alive(self):
        # Hot paths bind children once at import time; reset must zero
        # them in place, never orphan them.
        registry = MetricsRegistry()
        family = registry.counter("t_total", "T.", ("kind",))
        child = family.labels("hot")
        child.inc(5)
        registry.reset()
        assert child.value == 0
        child.inc()
        assert family.labels("hot") is child
        assert child.value == 1


class TestHistogram:
    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.cumulative()[-1] == ("+Inf", 0)

    def test_single_sample(self):
        h = Histogram(bounds=(1, 2, 4))
        h.observe(3)
        assert h.count == 1
        assert h.mean == 3.0
        # Cumulative counts: <=1: 0, <=2: 0, <=4: 1, +Inf: 1.
        assert h.cumulative() == [("1", 0), ("2", 0), ("4", 1), ("+Inf", 1)]

    def test_overflow_bucket(self):
        h = Histogram(bounds=(1, 2))
        h.observe(100)
        assert h.cumulative() == [("1", 0), ("2", 0), ("+Inf", 1)]
        assert h.snapshot()["buckets"][">2"] == 1

    def test_cumulative_counts_are_monotone(self):
        h = Histogram()
        for value in (1, 1, 3, 9, 200):
            h.observe(value)
        counts = [count for _, count in h.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == 5


# ---------------------------------------------------------------------------
# Exporters (golden)
# ---------------------------------------------------------------------------


def synthetic_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    cache = registry.counter(
        "demo_cache_events_total", "Cache events.", ("cache", "event"))
    cache.labels("lru", "hit").inc(7)
    cache.labels("lru", "miss").inc(2)
    # Label values needing escaping: backslash, quote, newline.
    odd = registry.counter("demo_odd_total", "Escaping.", ("path",))
    odd.labels('a\\b"c\nd').inc()
    gauge = registry.gauge("demo_depth", "Current depth.")
    gauge.set(3)
    hist = registry.histogram(
        "demo_latency", "Latency.", bounds=(1, 2, 4))
    for value in (0.5, 1.5, 3, 100):
        hist.observe(value)
    return registry


class TestPrometheusExport:
    def test_golden(self, request):
        text = export.to_prometheus(synthetic_registry())
        check_golden("metrics.prom", text, request)

    def test_histogram_exposition_shape(self):
        text = export.to_prometheus(synthetic_registry())
        assert 'demo_latency_bucket{le="+Inf"} 4' in text
        assert "demo_latency_sum 105" in text
        assert "demo_latency_count 4" in text

    def test_label_escaping(self):
        text = export.to_prometheus(synthetic_registry())
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_json_roundtrips(self):
        payload = json.loads(export.to_json_text(synthetic_registry()))
        assert payload["schema"] == "maya.metrics/1"
        families = {f["name"]: f for f in payload["families"]}
        assert families["demo_depth"]["kind"] == "gauge"
        cache_samples = families["demo_cache_events_total"]["samples"]
        assert {"cache": "lru", "event": "hit"} in \
            [s["labels"] for s in cache_samples]
        assert sum(s["value"] for s in cache_samples) == 9


def synthetic_tracer() -> trace.Tracer:
    tracer = trace.Tracer()
    compile_span = tracer.begin("compile", "demo.maya")
    lex = tracer.begin("phase", "lex")
    tracer.end(lex)
    parse = tracer.begin("phase", "parse+expand")
    dispatch = tracer.begin("dispatch", "Statement")
    expand = tracer.begin("expand", "EForEach")
    tracer.end(expand)
    tracer.end(dispatch)
    tracer.end(parse)
    tracer.end(compile_span)
    # Overwrite the clocks with fixed values (seconds) so the exported
    # milliseconds are bytes-stable.
    compile_span.start, compile_span.end = 10.000, 10.010
    lex.start, lex.end = 10.000, 10.001
    parse.start, parse.end = 10.001, 10.009
    dispatch.start, dispatch.end = 10.002, 10.008
    expand.start, expand.end = 10.003, 10.006
    return tracer


class TestFlamegraphExport:
    def test_speedscope_golden(self, request):
        text = flamegraph.to_speedscope_text(synthetic_tracer(), name="demo")
        check_golden("flamegraph.speedscope.json", text, request)

    def test_speedscope_is_well_formed(self):
        doc = json.loads(
            flamegraph.to_speedscope_text(synthetic_tracer(), name="demo"))
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["unit"] == "milliseconds"
        events = profile["events"]
        # Monotone timestamps, balanced O/C nesting.
        assert all(a["at"] <= b["at"] for a, b in zip(events, events[1:]))
        stack = []
        for event in events:
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert stack == []

    def test_folded_stacks(self):
        folded = flamegraph.folded_stacks(synthetic_tracer())
        lines = dict(
            line.rsplit(" ", 1) for line in folded.splitlines()
        )
        # Self time in integer microseconds per unique path.
        assert lines["compile demo.maya;phase lex"] == "1000"
        assert lines[
            "compile demo.maya;phase parse+expand;dispatch Statement;"
            "expand EForEach"
        ] == "3000"
        # compile self-time: 10ms total - 1ms lex - 8ms parse = 1ms.
        assert lines["compile demo.maya"] == "1000"


# ---------------------------------------------------------------------------
# Laziness profiler
# ---------------------------------------------------------------------------


PLAIN_CLASS = """
    class Plain {
        int one() { return 1; }
        int two() { return 2; }
    }
"""

TYPEDEF_CLASS = """
    class Demo {
        static void main() {
            use maya.util.Typedef;
            typedef (Table = java.util.Hashtable) {
                Table t = new Table();
                t.put("k", "v");
            }
        }
    }
"""


def profile_compile(source: str, **kwargs) -> obs_lazy.LazinessProfiler:
    profiler = obs_lazy.activate()
    try:
        compile_source(source, **kwargs)
    finally:
        obs_lazy.deactivate()
    return profiler


class TestLazinessProfiler:
    def test_forced_never_exceeds_created(self):
        for source, kwargs in (
            (PLAIN_CLASS, {}),
            (TYPEDEF_CLASS, {"macros": True}),
        ):
            profiler = profile_compile(source, **kwargs)
            assert profiler.forced_total <= profiler.created_total

    def test_fully_eager_compile_forces_everything(self):
        # A plain class has no macros to leave work unexpanded: every
        # method-body thunk the parser creates, the compiler forces.
        profiler = profile_compile(PLAIN_CLASS)
        assert profiler.created_total > 0
        assert profiler.forced_total == profiler.created_total
        assert profiler.never_forced_fraction == 0.0

    def test_rescoped_thunks_are_never_forced(self):
        # ``use`` rescopes the remaining lazy bodies into a child
        # environment; the original thunks are abandoned unforced, so
        # a macro-using program has a nonzero never-forced fraction.
        profiler = profile_compile(TYPEDEF_CLASS, macros=True)
        assert profiler.never_forced > 0
        assert 0.0 < profiler.never_forced_fraction < 1.0

    def test_token_accounting(self):
        profiler = profile_compile(TYPEDEF_CLASS, macros=True)
        assert profiler.tokens_forced_total <= profiler.tokens_created_total
        assert 0.0 < profiler.never_parsed_token_fraction < 1.0

    def test_snapshot_shape(self):
        snapshot = profile_compile(PLAIN_CLASS).snapshot()
        assert snapshot["thunks"]["never_forced"] == 0
        assert snapshot["tokens"]["captured"] >= snapshot["tokens"]["parsed"]
        # Creation and forcing happen in *different* phases (that is
        # the point of laziness), so compare totals, not key sets.
        assert sum(snapshot["created_by_phase_symbol"].values()) == \
            sum(snapshot["forced_by_phase_symbol"].values())

    def test_render_mentions_fractions(self):
        text = profile_compile(TYPEDEF_CLASS, macros=True).render()
        assert "== mayac lazy report ==" in text
        assert "never forced" in text
        assert "per production:" in text

    def test_inactive_hooks_are_noops(self):
        assert obs_lazy.active is None
        profiler = profile_compile(PLAIN_CLASS)
        created = profiler.created_total
        # Compiling again without an active profiler must not touch the
        # deactivated profiler's tallies.
        compile_source(PLAIN_CLASS)
        assert profiler.created_total == created


# ---------------------------------------------------------------------------
# mayac CLI surfaces
# ---------------------------------------------------------------------------


from repro.mayac import main as mayac_main  # noqa: E402


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.maya"
    path.write_text("""
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Vector v = new Vector();
                v.addElement("obs");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """)
    return str(path)


class TestCliTelemetry:
    def test_metrics_out_stdout_prometheus(self, demo_file, capsys):
        assert mayac_main([demo_file, "--metrics-out", "-"]) == 0
        out = capsys.readouterr().out
        # The acceptance surface: cache, dispatch, phase-timing, and
        # laziness families, in valid exposition format.
        for family in (
            "maya_cache_events_total",
            "maya_dispatch_reductions_total",
            "maya_phase_seconds_total",
            "maya_lazy_thunks_created_total",
            "maya_lazy_thunks_forced_total",
        ):
            assert family in out
        for line in out.splitlines():
            assert line.startswith("#") or " " in line

    def test_metrics_out_json(self, demo_file, tmp_path):
        out = tmp_path / "m.json"
        assert mayac_main([demo_file, "--metrics-out", str(out),
                           "--metrics-format", "json"]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "maya.metrics/1"
        names = {f["name"] for f in payload["families"]}
        assert "maya_dispatch_reductions_total" in names

    def test_metrics_out_unwritable_path(self, demo_file, capsys):
        code = mayac_main([demo_file, "--metrics-out",
                           "/nonexistent-dir/metrics.prom"])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot write metrics" in err
        assert "Traceback" not in err

    def test_flamegraph_speedscope(self, demo_file, tmp_path):
        out = tmp_path / "flame.json"
        assert mayac_main([demo_file, "--flamegraph", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["profiles"][0]["type"] == "evented"
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert any(name.startswith("compile ") for name in frames)
        assert any(name.startswith("expand ") for name in frames)

    def test_flamegraph_folded(self, demo_file, capsys):
        assert mayac_main([demo_file, "--flamegraph", "-",
                           "--flamegraph-format", "folded"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0
        assert any(";expand " in line for line in out.splitlines())

    def test_flamegraph_unwritable_path(self, demo_file, capsys):
        code = mayac_main([demo_file, "--flamegraph",
                           "/nonexistent-dir/flame.json"])
        assert code == 1
        assert "cannot write flamegraph" in capsys.readouterr().err

    def test_lazy_report(self, demo_file, capsys):
        assert mayac_main([demo_file, "--lazy-report"]) == 0
        err = capsys.readouterr().err
        assert "== mayac lazy report ==" in err
        assert "never forced" in err

    def test_lazy_report_nonzero_never_forced(self, tmp_path, capsys):
        # use-rescoped bodies leave abandoned thunks: a visible
        # never-forced fraction, per the acceptance criterion.
        path = tmp_path / "lazy.maya"
        path.write_text("""
            class Demo {
                static void main() {
                    use maya.util.Typedef;
                    typedef (Table = java.util.Hashtable) {
                        Table t = new Table();
                        t.put("k", "v");
                    }
                }
            }
        """)
        assert mayac_main([str(path), "--lazy-report"]) == 0
        err = capsys.readouterr().err
        import re
        match = re.search(r"(\d+) never forced \((\d+\.\d)%", err)
        assert match, err
        assert int(match.group(1)) > 0


# ---------------------------------------------------------------------------
# The structured event log and request context
# ---------------------------------------------------------------------------

import re  # noqa: E402
import threading  # noqa: E402

from repro.obs import log as obs_log  # noqa: E402
from repro.obs.log import EventLog, RequestContext, request_scope  # noqa: E402


class TestEventLog:
    def test_levels_filter_below_threshold(self):
        log = EventLog(level="info")
        assert log.emit("noise", level="debug") is None
        record = log.emit("signal", level="warn", detail=1)
        assert record["name"] == "signal" and record["detail"] == 1
        assert [r["name"] for r in log.records()] == ["signal"]
        log.set_level("debug")
        assert log.emit("noise", level="debug") is not None

    def test_ring_is_bounded_but_emitted_is_monotone(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit(f"e{i}")
        assert len(log) == 4
        assert log.emitted == 10
        assert [r["name"] for r in log.records()] == ["e6", "e7", "e8",
                                                      "e9"]

    def test_records_filter_by_name_prefix_and_request(self):
        log = EventLog()
        with request_scope() as context:
            log.emit("server.request.received")
            log.emit("server.worker.crash")
        log.emit("server.request.received")  # outside any scope
        assert len(log.records(name="server.request.")) == 2
        scoped = log.records(request_id=context.request_id)
        assert [r["name"] for r in scoped] == ["server.request.received",
                                               "server.worker.crash"]

    def test_scope_stamps_ids_and_explicit_fields_win(self):
        log = EventLog()
        with request_scope() as context:
            stamped = log.emit("auto")
            overridden = log.emit("manual", request_id="r-aaaaaaaaaaaa")
        assert stamped["request_id"] == context.request_id
        assert stamped["trace_id"] == context.trace_id
        assert overridden["request_id"] == "r-aaaaaaaaaaaa"
        bare = log.emit("outside")
        assert "request_id" not in bare

    def test_minted_ids_match_their_contracts(self):
        assert obs_log.REQUEST_ID_RE.match(obs_log.mint_request_id())
        assert obs_log.TRACE_ID_RE.match(obs_log.mint_trace_id())
        assert not obs_log.REQUEST_ID_RE.match("r-XYZ")
        assert not obs_log.TRACE_ID_RE.match("t-short")

    def test_sink_is_a_flight_recorder(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink_path=str(path))
        log.emit("one", n=1)
        log.emit("two", n=2)
        lines = [json.loads(line) for line in
                 path.read_text(encoding="utf-8").splitlines()]
        assert [r["name"] for r in lines] == ["one", "two"]
        assert all(r["type"] == "event" for r in lines)
        log.set_sink(None)
        log.emit("three")  # ring only; the sink is closed
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2

    def test_bad_level_is_rejected(self):
        with pytest.raises(ValueError):
            EventLog(level="loud")
        with pytest.raises(ValueError):
            EventLog().set_level("silent")


class TestRequestContext:
    def test_phases_accumulate_and_round(self):
        context = RequestContext()
        context.add_phase("lex", 0.0101)
        context.add_phase("lex", 0.0052)
        context.add_phase("parse", 0.002)
        assert context.phase_ms() == {"lex": 15.3, "parse": 2.0}

    def test_note_merges_outcomes(self):
        context = RequestContext()
        context.note(artifact="miss")
        context.note(modules_reused=3)
        assert context.outcomes == {"artifact": "miss",
                                    "modules_reused": 3}

    def test_same_context_shared_across_threads(self):
        # The daemon's handler/worker/degraded-rerun discipline: other
        # threads re-bind the SAME object, so accumulation is shared.
        context = RequestContext()

        def worker():
            with request_scope(context):
                obs_log.current_request().add_phase("work", 0.001)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert context.phase_ms() == {"work": 1.0}

    def test_contextvars_do_not_leak_across_threads(self):
        seen = []

        def probe():
            seen.append(obs_log.current_request())

        with request_scope():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert obs_log.current_request() is not None
        assert seen == [None]
        assert obs_log.current_request() is None

    def test_nested_scopes_restore(self):
        with request_scope() as outer:
            with request_scope() as inner:
                assert obs_log.current_request() is inner
            assert obs_log.current_request() is outer


class TestExemplars:
    @staticmethod
    def _sample(registry, name):
        family = next(f for f in registry.snapshot()["families"]
                      if f["name"] == name)
        return family["samples"][0]

    def test_histogram_exemplar_under_request_scope(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("obs_exemplar_ms", "t")
        with request_scope() as context:
            histogram.observe(7.0)
        exemplar = self._sample(registry, "obs_exemplar_ms")["exemplar"]
        assert exemplar == {"value": 7.0,
                            "request_id": context.request_id,
                            "trace_id": context.trace_id}

    def test_no_exemplar_outside_scope(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("obs_plain_ms", "t")
        histogram.observe(1.0)
        assert "exemplar" not in self._sample(registry, "obs_plain_ms")

    def test_exemplar_stays_out_of_prometheus_text(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("obs_prom_ms", "t")
        with request_scope():
            histogram.observe(3.0)
        text = export.to_prometheus(registry)
        assert "exemplar" not in text
        assert "r-" not in text


# ---------------------------------------------------------------------------
# Concurrent exposition (the daemon exports while workers write)
# ---------------------------------------------------------------------------

_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$")


class TestConcurrentExposition:
    """Hammer counters/gauges/histograms from threads while exporting:
    every exposition must stay parse-clean Prometheus 0.0.4 text, and
    counters must read monotone across successive exports."""

    WRITERS = 6

    @staticmethod
    def _assert_parse_clean(text: str) -> None:
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _PROM_SAMPLE_RE.match(line), f"unparseable: {line!r}"
            value = line.rsplit(" ", 1)[1]
            float(value)  # raises on torn/garbled values

    @staticmethod
    def _samples(text: str, prefix: str):
        for line in text.splitlines():
            if line.startswith(prefix) and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                yield name, float(value)

    def test_exposition_under_concurrent_writes(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_hammer_total", "writes",
                                   ("lane",))
        gauge = registry.gauge("obs_hammer_gauge", "level", ("lane",))
        histogram = registry.histogram("obs_hammer_ms", "latencies",
                                       bounds=(1, 2, 4, 8))
        stop = threading.Event()
        errors = []

        def writer(lane: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    counter.labels(str(lane)).inc()
                    gauge.labels(str(lane)).set(i % 17)
                    histogram.observe(float(i % 10))
                    i += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(lane,))
                   for lane in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        last: dict = {}
        try:
            for _ in range(40):
                text = export.to_prometheus(registry)
                self._assert_parse_clean(text)
                # Counters are monotone export-over-export.
                for name, value in self._samples(text,
                                                 "obs_hammer_total"):
                    assert value >= last.get(name, 0.0), name
                    last[name] = value
                # Histogram buckets are cumulative within one export.
                buckets = [v for _, v in self._samples(
                    text, "obs_hammer_ms_bucket")]
                assert buckets == sorted(buckets)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        # The writers made progress while exports were happening.
        assert sum(last.values()) > 0
