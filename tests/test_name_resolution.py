"""JLS-style ambiguous-name resolution (the QName reclassification)."""

import pytest

from repro.typecheck import CheckError
from tests.conftest import compile_source, run_main


class TestNameForms:
    def test_local_then_fields(self):
        assert run_main("""
            class Inner { int depth = 3; }
            class Outer { Inner inner = new Inner(); }
            class Demo {
                static void main() {
                    Outer o = new Outer();
                    System.out.println(o.inner.depth);
                }
            }
        """) == ["3"]

    def test_implicit_this_field(self):
        assert run_main("""
            class Demo {
                int size = 10;
                int grow() { return size + 1; }
                static void main() {
                    System.out.println(new Demo().grow());
                }
            }
        """) == ["11"]

    def test_static_field_through_class_name(self):
        assert run_main("""
            class Config { static int LIMIT = 99; }
            class Demo {
                static void main() { System.out.println(Config.LIMIT); }
            }
        """) == ["99"]

    def test_fully_qualified_static_chain(self):
        # java.lang.System.out: package prefix + class + static field.
        assert run_main("""
            class Demo {
                static void main() {
                    java.lang.System.out.println("qualified");
                }
            }
        """) == ["qualified"]

    def test_local_shadows_class_name(self):
        """A local variable named like a class wins (JLS 6.5)."""
        assert run_main("""
            class Config { static int LIMIT = 99; }
            class Demo {
                static int helper(int Config) { return Config * 2; }
                static void main() {
                    System.out.println(helper(4));
                }
            }
        """) == ["8"]

    def test_field_shadowed_by_local(self):
        assert run_main("""
            class Demo {
                static String who = "field";
                static void main() {
                    String who = "local";
                    System.out.println(who);
                }
            }
        """) == ["local"]

    def test_assignment_through_field_chain(self):
        assert run_main("""
            class Holder { int value; }
            class Demo {
                static void main() {
                    Holder h = new Holder();
                    h.value = 5;
                    h.value += 2;
                    System.out.println(h.value);
                }
            }
        """) == ["7"]

    def test_static_field_assignment_via_class(self):
        assert run_main("""
            class Counter { static int n; }
            class Demo {
                static void main() {
                    Counter.n = 4;
                    Counter.n++;
                    System.out.println(Counter.n);
                }
            }
        """) == ["5"]

    def test_class_used_as_value_is_error(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Config { }
                class Demo {
                    static void main() { Object o = Config; }
                }
            """)

    def test_instance_method_via_static_context_error(self):
        with pytest.raises(CheckError):
            compile_source("""
                class Demo {
                    int inst() { return 1; }
                    static void main() { Demo.inst(); }
                }
            """)

    def test_inherited_field_through_chain(self):
        assert run_main("""
            class Base { int shared = 7; }
            class Sub extends Base { }
            class Demo {
                static void main() {
                    Sub s = new Sub();
                    System.out.println(s.shared);
                }
            }
        """) == ["7"]

    def test_scope_per_block(self):
        assert run_main("""
            class Demo {
                static void main() {
                    { int x = 1; System.out.println(x); }
                    { int x = 2; System.out.println(x); }
                }
            }
        """) == ["1", "2"]
